"""The First-Load Log (FLL): BugNet's per-interval replay log.

Header (Section 4.2): process id, thread id, program counter, the 32
register values, the checkpoint-interval identifier (C-ID) and a
timestamp.  Body (Section 4.3): one bit-packed record per *logged* load::

    (LC-Type, Reduced/Full L-Count, LV-Type, Encoded/Full Load-Value)

* ``LC-Type`` — 1 bit: L-Count in 5 bits (< 32) or in
  ``log2(interval length)`` bits,
* ``L-Count`` — loads *skipped* (not logged) since the previous logged
  load,
* ``LV-Type`` — 1 bit: value as a dictionary index (6 bits for the
  64-entry table) or as a full 32-bit word.

Neither the effective address nor the PC is logged — replay regenerates
both.  A footer carries what the OS records when the interval ends: the
final instruction count and, if the interval ended in a crash, the
faulting PC (Section 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.bits import BitReader, BitWriter
from repro.common.config import BugNetConfig
from repro.common.errors import LogDecodeError

_PID_BITS = 16
_TIMESTAMP_BITS = 64
_PC_BITS = 32
_REG_BITS = 32 * 32


@dataclass(frozen=True)
class FLLHeader:
    """Architectural state at the start of a checkpoint interval.

    ``major`` marks intervals that began with all first-load bits
    cleared; under the basic scheme every interval is major, under the
    aggressive Section 4.4 scheme only every Nth is, and replay chains
    must start at one.
    """

    pid: int
    tid: int
    cid: int
    timestamp: int
    pc: int
    regs: tuple[int, ...]
    major: bool = True

    def __post_init__(self) -> None:
        if len(self.regs) != 32:
            raise ValueError("header needs all 32 register values")

    def bit_size(self, config: BugNetConfig) -> int:
        """Encoded header size in bits (the major flag costs one)."""
        return (_PID_BITS + config.tid_bits + config.cid_bits
                + _TIMESTAMP_BITS + _PC_BITS + _REG_BITS + 1)


@dataclass(frozen=True)
class LoadRecord:
    """One decoded FLL body record."""

    skipped: int
    value: int
    from_dictionary: bool


@dataclass(frozen=True)
class FLL:
    """A finalized First-Load Log for one checkpoint interval."""

    header: FLLHeader
    payload: bytes
    payload_bits: int
    num_records: int
    end_ic: int
    fault_pc: int | None
    # Raw (uncompressed) payload bits, for compression-ratio accounting:
    raw_payload_bits: int

    def bit_size(self, config: BugNetConfig) -> int:
        """Total encoded size in bits: header + body + footer."""
        footer = config.ic_bits + 1 + (_PC_BITS if self.fault_pc is not None else 0)
        return self.header.bit_size(config) + self.payload_bits + footer

    def byte_size(self, config: BugNetConfig) -> int:
        """Total encoded size in bytes (rounded up)."""
        return (self.bit_size(config) + 7) // 8

    @property
    def interval_length(self) -> int:
        """Committed instructions covered by this interval."""
        return self.end_ic


class FLLWriter:
    """Incrementally encodes one interval's FLL."""

    def __init__(self, config: BugNetConfig, header: FLLHeader) -> None:
        self.config = config
        self.header = header
        self._bits = BitWriter()
        self._records = 0
        self._raw_bits = 0
        self._value_bits = 0
        self._reduced_limit = 1 << config.reduced_lcount_bits
        self._reduced_bits = config.reduced_lcount_bits
        self._full_bits = config.full_lcount_bits
        self._index_bits = config.dictionary.index_bits
        # Uncompressed baseline per record: no dictionary (full value) and
        # no reduced L-Count (full width), mirroring the paper's
        # compression-ratio denominator.
        self._raw_record_bits = 1 + config.full_lcount_bits + 1 + 32

    @property
    def num_records(self) -> int:
        """Records appended so far."""
        return self._records

    @property
    def payload_bits(self) -> int:
        """Body bits appended so far (drives Checkpoint Buffer occupancy)."""
        return self._bits.bit_length

    @property
    def value_bits(self) -> int:
        """Value-field bits appended so far (6 per hit, 32 per miss).

        ``payload_bits - value_bits`` is the shared LC-Type/L-Count/
        LV-Type overhead — the quantity Figure 6's satellite-dictionary
        accounting needs, exposed here so the batched path does not have
        to re-derive it per record.
        """
        return self._value_bits

    def append(self, skipped: int, value: int, dict_index: int | None) -> int:
        """Append one record; returns its encoded size in bits.

        *skipped* is the L-Count; *dict_index* is the dictionary position
        when the value hit the compressor (``None`` → full value logged).
        """
        bits = self._bits
        before = bits.bit_length
        if skipped < self._reduced_limit:
            bits.write_bool(False)
            bits.write(skipped, self._reduced_bits)
        else:
            bits.write_bool(True)
            bits.write(skipped, self._full_bits)
        if dict_index is not None:
            bits.write_bool(True)
            bits.write(dict_index, self._index_bits)
            self._value_bits += self._index_bits
        else:
            bits.write_bool(False)
            bits.write_word(value)
            self._value_bits += 32
        self._records += 1
        self._raw_bits += self._raw_record_bits
        return bits.bit_length - before

    def append_many(self, records) -> int:
        """Append ``(skipped, value, dict_index)`` records in one call.

        Bit-identical to calling :meth:`append` per record — each record
        is pre-fused into a single ``(value, bits)`` chunk (MSB-first
        concatenation is associative) and handed to
        :meth:`BitWriter.extend`.  Returns the encoded size in bits.
        """
        bits = self._bits
        before = bits.bit_length
        reduced_limit = self._reduced_limit
        reduced_bits = self._reduced_bits
        full_bits = self._full_bits
        index_bits = self._index_bits
        value_bits = 0
        chunks = []
        chunk_append = chunks.append
        for skipped, value, dict_index in records:
            if skipped < reduced_limit:
                lc_field = skipped
                lc_width = 1 + reduced_bits
            else:
                if skipped >> full_bits:
                    # Fusing the escape bit would silently alias an
                    # oversized L-Count; fail loudly like append() does.
                    raise ValueError(
                        f"value {skipped} does not fit in {full_bits} bits"
                    )
                lc_field = (1 << full_bits) | skipped
                lc_width = 1 + full_bits
            if dict_index is not None:
                if dict_index >> index_bits:
                    # Same fail-loudly contract as the L-Count guard: an
                    # oversized index would alias onto the LV-Type bit.
                    raise ValueError(
                        f"value {dict_index} does not fit in {index_bits} bits"
                    )
                chunk_append((
                    (lc_field << (1 + index_bits)) | (1 << index_bits) | dict_index,
                    lc_width + 1 + index_bits,
                ))
                value_bits += index_bits
            else:
                chunk_append((
                    (lc_field << 33) | (value & 0xFFFFFFFF),
                    lc_width + 33,
                ))
                value_bits += 32
        bits.extend(chunks)
        self._value_bits += value_bits
        self._records += len(chunks)
        self._raw_bits += self._raw_record_bits * len(chunks)
        return bits.bit_length - before

    def finalize(self, end_ic: int, fault_pc: int | None = None) -> FLL:
        """Close the interval (OS records end IC and faulting PC)."""
        return FLL(
            header=self.header,
            payload=self._bits.getvalue(),
            payload_bits=self._bits.bit_length,
            num_records=self._records,
            end_ic=end_ic,
            fault_pc=fault_pc,
            raw_payload_bits=self._raw_bits,
        )


class FLLReader:
    """Decodes FLL body records.

    Values logged as dictionary indices cannot be resolved by the reader
    alone — the replayer resolves them against its simulated dictionary —
    so iteration yields ``(skipped, is_encoded, raw_field)`` tuples.
    """

    def __init__(self, config: BugNetConfig, fll: FLL) -> None:
        self.config = config
        self.fll = fll
        self._reader = BitReader(fll.payload, fll.payload_bits)
        self._remaining = fll.num_records

    @property
    def remaining(self) -> int:
        """Records not yet decoded."""
        return self._remaining

    def next_record(self) -> tuple[int, bool, int]:
        """Decode one record: ``(skipped, is_encoded, raw_field)``."""
        if self._remaining <= 0:
            raise LogDecodeError("no records left in FLL")
        config = self.config
        reader = self._reader
        try:
            full_lcount = reader.read_bool()
            if full_lcount:
                skipped = reader.read(config.full_lcount_bits)
            else:
                skipped = reader.read(config.reduced_lcount_bits)
            encoded = reader.read_bool()
            if encoded:
                raw = reader.read(config.dictionary.index_bits)
            else:
                raw = reader.read_word()
        except EOFError as exc:
            raise LogDecodeError(f"truncated FLL payload: {exc}") from exc
        self._remaining -= 1
        return skipped, encoded, raw

    def __iter__(self) -> Iterator[tuple[int, bool, int]]:
        while self._remaining > 0:
            yield self.next_record()

    def decode_all(self) -> "list[tuple[int, bool, int]]":
        """Decode every remaining record in one pass.

        Identical results to repeated :meth:`next_record`, but decoded
        with a rolling accumulator instead of per-field
        :class:`~repro.common.bits.BitReader` calls — the fast-replay
        path (:mod:`repro.replay.fastreplay`) consumes first-load
        records from this list.  A payload too short for the claimed
        record count raises :class:`LogDecodeError`, exactly like the
        incremental reader (just before replay instead of at the
        mid-replay load that would have consumed the missing record).
        """
        config = self.config
        full_bits = config.full_lcount_bits
        reduced_bits = config.reduced_lcount_bits
        index_bits = config.dictionary.index_bits
        full_mask = (1 << full_bits) - 1
        reduced_mask = (1 << reduced_bits) - 1
        index_mask = (1 << index_bits) - 1
        reader = self._reader
        data = self._data()
        pos = reader.position
        limit = self.fll.payload_bits
        # Cheapest possible truncation guard: every record costs at
        # least flag + reduced L-Count + flag + dictionary index bits.
        min_record = 2 + reduced_bits + index_bits
        if pos + self._remaining * min_record > limit:
            raise LogDecodeError(
                f"truncated FLL payload: {self._remaining} records cannot "
                f"fit in {limit - pos} bits"
            )
        acc = 0
        nbits = 0
        byte_pos, bit_off = divmod(pos, 8)
        if bit_off and byte_pos < len(data):
            acc = data[byte_pos] & ((1 << (8 - bit_off)) - 1)
            nbits = 8 - bit_off
            byte_pos += 1
        records = []
        append = records.append
        data_len = len(data)
        consumed = pos
        max_record = 34 + full_bits
        for _ in range(self._remaining):
            while nbits < max_record and byte_pos < data_len:
                acc = (acc << 8) | data[byte_pos]
                byte_pos += 1
                nbits += 8
            if nbits < max_record:
                # Stream exhausted: zero-pad so field extraction stays
                # branch-free; the `consumed` guard below rejects any
                # record that actually reaches into the padding.
                acc <<= max_record - nbits
                nbits = max_record
            # flag: full or reduced L-Count width
            nbits -= 1
            if (acc >> nbits) & 1:
                width, mask = full_bits, full_mask
            else:
                width, mask = reduced_bits, reduced_mask
            nbits -= width
            skipped = (acc >> nbits) & mask
            nbits -= 1
            encoded = (acc >> nbits) & 1
            vwidth = index_bits if encoded else 32
            nbits -= vwidth
            consumed += 2 + width + vwidth
            if consumed > limit:
                raise LogDecodeError(
                    "truncated FLL payload: bit stream exhausted"
                )
            raw = (acc >> nbits) & (index_mask if encoded else 0xFFFFFFFF)
            acc &= (1 << nbits) - 1
            append((skipped, bool(encoded), raw))
        # Leave the incremental reader consistent: everything consumed.
        reader._pos = consumed
        self._remaining = 0
        return records

    def _data(self) -> bytes:
        return self._reader._data
