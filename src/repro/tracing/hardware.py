"""On-chip hardware area model (paper Table 3).

BugNet's hardware is a Checkpoint Buffer, a Memory Race Buffer and a
small fully-associative dictionary CAM; the buffers' sizes are constant
in the replay-window length because the logs are memory backed.  FDR's
totals come from the FDR paper as quoted by BugNet's Table 3 — they
describe the comparison system's silicon, not behaviour we can simulate,
so we reproduce them as published constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import BugNetConfig, CacheConfig


@dataclass(frozen=True)
class HardwareBudget:
    """A named breakdown of on-chip storage in bytes."""

    name: str
    components: dict[str, int] = field(default_factory=dict)
    notes: dict[str, str] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Sum of all component sizes."""
        return sum(self.components.values())

    @property
    def total_kb(self) -> float:
        """Total in kilobytes (paper's unit)."""
        return self.total_bytes / 1024


def dictionary_cam_bytes(config: BugNetConfig) -> int:
    """Storage for the dictionary CAM: value + saturating counter per entry."""
    entry_bits = 32 + config.dictionary.counter_bits
    return (config.dictionary.entries * entry_bits + 7) // 8


def first_load_bit_bytes(l1: CacheConfig, l2: CacheConfig) -> int:
    """SRAM for the per-word first-load bits in both cache levels.

    Table 3 does not itemize these (they are amortized into the cache
    arrays), but we report them so the comparison is honest about where
    state lives.
    """
    words = (l1.size + l2.size) // 4
    return (words + 7) // 8


def bugnet_hardware(
    config: BugNetConfig,
    l1: CacheConfig | None = None,
    l2: CacheConfig | None = None,
) -> HardwareBudget:
    """BugNet's on-chip budget for a given configuration."""
    components = {
        "Checkpoint Buffer (CB)": config.checkpoint_buffer_bytes,
        "Memory Race Buffer (MRB)": config.race_buffer_bytes,
        "Dictionary CAM": dictionary_cam_bytes(config),
    }
    notes = {
        "Dictionary CAM": f"{config.dictionary.entries}-entry fully associative",
    }
    if l1 is not None and l2 is not None:
        components["First-load bits (in cache arrays)"] = first_load_bit_bytes(l1, l2)
        notes["First-load bits (in cache arrays)"] = (
            "1 bit per 32-bit word in L1+L2; amortized into the data arrays"
        )
    return HardwareBudget("BugNet", components, notes)


def fdr_hardware() -> HardwareBudget:
    """FDR's on-chip budget as published (BugNet Table 3)."""
    kb = 1024
    return HardwareBudget(
        "FDR",
        components={
            "Memory Race Buffer (MRB)": 32 * kb,
            "Cache checkpoint buffer": 1024 * kb,
            "Memory checkpoint buffer": 256 * kb,
            "Interrupt buffer": 64 * kb,
            "Input buffer": 8 * kb,
            "DMA buffer": 32 * kb,
        },
        notes={
            "Cache checkpoint buffer": "SafetyNet checkpointing",
            "Memory checkpoint buffer": "SafetyNet checkpointing",
        },
    )
