"""The Memory Race Log (MRL): cross-thread ordering for replay.

One MRL is created per checkpoint interval, in lockstep with the FLL and
sharing its C-ID (Section 4.6.3).  Whenever a coherence reply arrives
from a remote core, the local thread appends::

    (local.IC, remote.TID, remote.CID, remote.IC)

which asserts: *remote thread TID had committed remote.IC instructions
of its interval remote.CID before my instruction local.IC executed.*
Field widths follow the paper: ``local.IC`` and ``remote.IC`` take
``log2(interval length)`` bits, ``remote.TID`` takes
``log2(max live threads)`` and ``remote.CID`` takes
``log2(max resident checkpoints)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.bits import BitReader, BitWriter
from repro.common.config import BugNetConfig
from repro.common.errors import LogDecodeError

_PID_BITS = 16
_TIMESTAMP_BITS = 64


@dataclass(frozen=True)
class MRLHeader:
    """Identifies the thread and interval this race log belongs to."""

    pid: int
    tid: int
    cid: int
    timestamp: int

    def bit_size(self, config: BugNetConfig) -> int:
        """Encoded header size in bits."""
        return _PID_BITS + config.tid_bits + config.cid_bits + _TIMESTAMP_BITS


@dataclass(frozen=True)
class MRLEntry:
    """One ordering constraint derived from a coherence reply."""

    local_ic: int
    remote_tid: int
    remote_cid: int
    remote_ic: int


@dataclass(frozen=True)
class MRL:
    """A finalized Memory Race Log for one checkpoint interval."""

    header: MRLHeader
    payload: bytes
    payload_bits: int
    num_entries: int

    def bit_size(self, config: BugNetConfig) -> int:
        """Total encoded size in bits."""
        return self.header.bit_size(config) + self.payload_bits

    def byte_size(self, config: BugNetConfig) -> int:
        """Total encoded size in bytes (rounded up)."""
        return (self.bit_size(config) + 7) // 8


class MRLWriter:
    """Incrementally encodes one interval's MRL."""

    def __init__(self, config: BugNetConfig, header: MRLHeader) -> None:
        self.config = config
        self.header = header
        self._bits = BitWriter()
        self._entries = 0

    @property
    def num_entries(self) -> int:
        """Entries appended so far."""
        return self._entries

    def append(self, entry: MRLEntry) -> None:
        """Append one race entry."""
        config = self.config
        bits = self._bits
        bits.write(entry.local_ic, config.ic_bits)
        bits.write(entry.remote_tid, config.tid_bits)
        bits.write(entry.remote_cid, config.cid_bits)
        bits.write(entry.remote_ic, config.ic_bits)
        self._entries += 1

    def finalize(self) -> MRL:
        """Close the log."""
        return MRL(
            header=self.header,
            payload=self._bits.getvalue(),
            payload_bits=self._bits.bit_length,
            num_entries=self._entries,
        )


class MRLReader:
    """Decodes MRL entries."""

    def __init__(self, config: BugNetConfig, mrl: MRL) -> None:
        self.config = config
        self.mrl = mrl
        self._reader = BitReader(mrl.payload, mrl.payload_bits)
        self._remaining = mrl.num_entries

    def next_entry(self) -> MRLEntry:
        """Decode one entry."""
        if self._remaining <= 0:
            raise LogDecodeError("no entries left in MRL")
        config = self.config
        reader = self._reader
        try:
            entry = MRLEntry(
                local_ic=reader.read(config.ic_bits),
                remote_tid=reader.read(config.tid_bits),
                remote_cid=reader.read(config.cid_bits),
                remote_ic=reader.read(config.ic_bits),
            )
        except EOFError as exc:
            raise LogDecodeError(f"truncated MRL payload: {exc}") from exc
        self._remaining -= 1
        return entry

    def __iter__(self) -> Iterator[MRLEntry]:
        while self._remaining > 0:
            yield self.next_entry()

    def decode_all(self) -> "list[MRLEntry]":
        """Decode every remaining entry in one pass.

        The batch path fleet validation uses: bit widths and the bound
        bit-reader are hoisted out of the loop and there is no
        generator resumption per entry, which matters when every
        thread of every report contributes an MRL per interval.
        """
        config = self.config
        read = self._reader.read
        ic_bits = config.ic_bits
        tid_bits = config.tid_bits
        cid_bits = config.cid_bits
        entries: "list[MRLEntry]" = []
        append = entries.append
        try:
            for _ in range(self._remaining):
                append(MRLEntry(
                    local_ic=read(ic_bits),
                    remote_tid=read(tid_bits),
                    remote_cid=read(cid_bits),
                    remote_ic=read(ic_bits),
                ))
        except EOFError as exc:
            raise LogDecodeError(f"truncated MRL payload: {exc}") from exc
        self._remaining = 0
        return entries
