"""Transitive reduction of memory-race edges (Netzer's optimization).

FDR — and BugNet, which adopts its race logging — implements Netzer's
algorithm [Netzer 1993] to avoid logging ordering edges already implied
by previously logged ones.  We provide two filters:

* :class:`PairwiseReducer` — the hardware-feasible approximation FDR
  describes: per remote thread, remember the latest (CID, IC) already
  ordered before us; a new reply that does not advance it is implied.
* :class:`VectorClockReducer` — an idealized reducer with full vector
  clocks (an edge is redundant iff the transitive closure of logged
  edges already orders it).  Used as the upper bound in the ablation
  benchmark.

Both are sound: they only drop *implied* edges, so replay ordering is
unaffected (tests verify the transitive closures match).
"""

from __future__ import annotations


class PairwiseReducer:
    """Per-remote-thread watermark filter (FDR's hardware scheme)."""

    def __init__(self) -> None:
        self._watermark: dict[int, tuple[int, int]] = {}

    def reset(self) -> None:
        """New checkpoint interval: prior knowledge is discarded.

        Intervals must be independently replayable, so implied-edge
        state cannot span an interval boundary.
        """
        self._watermark.clear()

    def should_log(self, remote_tid: int, remote_cid: int, remote_ic: int) -> bool:
        """Decide whether this reply adds ordering information."""
        seen = self._watermark.get(remote_tid)
        if seen is not None:
            seen_cid, seen_ic = seen
            if seen_cid == remote_cid and remote_ic <= seen_ic:
                return False
        self._watermark[remote_tid] = (remote_cid, remote_ic)
        return True


class VectorClockReducer:
    """Idealized Netzer reduction using full vector clocks.

    Tracks, per thread, the latest known position of every other thread
    (propagated transitively through replies).  An edge is logged only
    when the local clock does not already dominate the remote position.

    Positions are (cid, ic) pairs compared lexicographically; CIDs are
    assumed monotonically increasing within the modeled horizon (true in
    our simulator; hardware wraps them, which is why real FDR uses the
    pairwise scheme).
    """

    def __init__(self) -> None:
        self._clocks: dict[int, dict[int, tuple[int, int]]] = {}

    def reset_thread(self, tid: int) -> None:
        """New interval for *tid*: its accumulated knowledge is discarded."""
        self._clocks.pop(tid, None)

    def should_log(
        self,
        local_tid: int,
        remote_tid: int,
        remote_cid: int,
        remote_ic: int,
    ) -> bool:
        """Decide and, if logging, merge the remote thread's knowledge."""
        clock = self._clocks.setdefault(local_tid, {})
        position = (remote_cid, remote_ic)
        known = clock.get(remote_tid)
        if known is not None and known >= position:
            return False
        # Log the edge and inherit everything the remote thread knew at
        # that point (transitive propagation).
        remote_clock = self._clocks.get(remote_tid, {})
        for tid, rpos in remote_clock.items():
            if tid == local_tid:
                continue
            mine = clock.get(tid)
            if mine is None or rpos > mine:
                clock[tid] = rpos
        clock[remote_tid] = position
        return True

    def observe_progress(self, tid: int, cid: int, ic: int) -> None:
        """Advance a thread's own position (piggybacked on its replies)."""
        clock = self._clocks.setdefault(tid, {})
        clock[tid] = (cid, ic)
