"""The per-thread BugNet recorder (paper Section 4).

Lifecycle of a checkpoint interval:

1. ``begin_interval`` — snapshot PC + registers into a fresh FLL header,
   clear every first-load bit in the private hierarchy, empty the
   dictionary, create the paired MRL (same C-ID), reset the Netzer
   filter.
2. During execution, the :class:`TracedMemoryInterface` reports every
   load (with its value and the hierarchy's first-access verdict) and
   every store; coherence replies arrive via ``race_reply``.
3. The interval ends when it reaches the configured maximum length, when
   an interrupt or context switch occurs (Section 4.4), or when the
   thread faults (Section 4.8, which also records the faulting PC).
   Finalized (FLL, MRL) pairs go to the :class:`~repro.tracing.backing.LogStore`.

Checkpoint IDs increment per interval and wrap at the configured
maximum-resident-checkpoints count, exactly as the paper's C-ID counter
does.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.hierarchy import FirstLoadHierarchy
from repro.common.config import BugNetConfig
from repro.tracing.backing import LogStore
from repro.tracing.dictionary import DictionaryCompressor
from repro.tracing.fll import FLLHeader, FLLWriter
from repro.tracing.mrl import MRLEntry, MRLHeader, MRLWriter
from repro.tracing.netzer import PairwiseReducer


class BugNetRecorder:
    """Records one thread's execution as a stream of (FLL, MRL) pairs."""

    def __init__(
        self,
        config: BugNetConfig,
        hierarchy: FirstLoadHierarchy,
        log_store: LogStore,
        pid: int = 1,
        tid: int = 0,
        clock: Callable[[], int] = lambda: 0,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.log_store = log_store
        self.pid = pid
        self.tid = tid
        self.clock = clock
        self.dictionary = DictionaryCompressor(config.dictionary)
        self.reducer = PairwiseReducer()
        self.active = False
        self.cid = 0
        self.ic = 0
        self._cid_counter = 0
        self._skipped = 0
        self._fll: FLLWriter | None = None
        self._mrl: MRLWriter | None = None
        # Cumulative statistics across all intervals.
        self.intervals_closed = 0
        self.loads_seen = 0
        self.loads_logged = 0
        self.instructions_recorded = 0
        # Optional hook fired with (fll, mrl, reason) when an interval
        # closes (the machine uses it for bus-bandwidth accounting).
        self.interval_listener = None

    # -- interval lifecycle ----------------------------------------------------

    def begin_interval(self, pc: int, regs: tuple[int, ...]) -> None:
        """Open a new checkpoint interval at architectural state (pc, regs).

        Under the basic scheme every interval clears the first-load bits
        (paper Section 4.3); with ``bit_clear_period`` N > 1 only every
        Nth interval does — the Section 4.4 aggressive scheme — so loads
        already captured by an earlier retained interval stay
        suppressed across syscalls and interrupts.
        """
        if self.active:
            raise RuntimeError("interval already active")
        self.cid = self._cid_counter % self.config.max_resident_checkpoints
        major = self._cid_counter % self.config.bit_clear_period == 0
        self._cid_counter += 1
        now = self.clock()
        self._fll = FLLWriter(self.config, FLLHeader(
            pid=self.pid, tid=self.tid, cid=self.cid,
            timestamp=now, pc=pc, regs=tuple(regs), major=major,
        ))
        self._mrl = MRLWriter(self.config, MRLHeader(
            pid=self.pid, tid=self.tid, cid=self.cid, timestamp=now,
        ))
        if major:
            self.hierarchy.clear_first_load_bits()
        self.dictionary.reset()
        self.reducer.reset()
        self.ic = 0
        self._skipped = 0
        self.active = True

    def end_interval(self, reason: str = "length", fault_pc: int | None = None) -> None:
        """Finalize the interval and hand the logs to the store."""
        if not self.active:
            return
        fll = self._fll.finalize(self.ic, fault_pc)
        mrl = self._mrl.finalize()
        self.log_store.add(self.tid, fll, mrl, reason=reason)
        self.instructions_recorded += self.ic
        self.intervals_closed += 1
        self.active = False
        self._fll = None
        self._mrl = None
        if self.interval_listener is not None:
            self.interval_listener(fll, mrl, reason)

    # -- event hooks (called by TracedMemoryInterface / the machine) -----------

    def note_load(self, value: int, first_access: bool) -> None:
        """Account one executed load; log it if it is a first access."""
        if not self.active:
            raise RuntimeError("load observed outside an active interval")
        self.loads_seen += 1
        index = self.dictionary.lookup_update(value)
        if first_access:
            self._fll.append(self._skipped, value, index)
            self._skipped = 0
            self.loads_logged += 1
        else:
            self._skipped += 1

    def note_loads(self, loads) -> int:
        """Batch :meth:`note_load`: *loads* is a sequence of
        ``(value, first_access)`` pairs, in execution order.

        Emits exactly the FLL bits the per-load calls would (the
        differential tests assert byte equality) while paying one
        function call per batch instead of four per load.  Only valid
        within one interval — the caller splits batches at interval
        boundaries, exactly as it already splits :meth:`note_commits`.
        Returns the number of loads logged.
        """
        if not self.active:
            raise RuntimeError("load observed outside an active interval")
        lookup_update = self.dictionary.lookup_update
        skipped = self._skipped
        records = []
        record_append = records.append
        count = 0
        for value, first_access in loads:
            count += 1
            index = lookup_update(value)
            if first_access:
                record_append((skipped, value, index))
                skipped = 0
            else:
                skipped += 1
        self._skipped = skipped
        self.loads_seen += count
        logged = len(records)
        if logged:
            self._fll.append_many(records)
            self.loads_logged += logged
        return logged

    def note_commit(self) -> bool:
        """Account one committed instruction; True if the interval closed."""
        if not self.active:
            raise RuntimeError("commit observed outside an active interval")
        self.ic += 1
        if self.ic >= self.config.checkpoint_interval:
            self.end_interval(reason="length")
            return True
        return False

    def note_commits(self, count: int) -> int:
        """Batch-account committed instructions (trace-driven fast path).

        Advances at most to the end of the current interval, closing it
        there; returns the number of commits *not* yet accounted (the
        caller re-opens an interval and calls again).
        """
        if not self.active:
            raise RuntimeError("commit observed outside an active interval")
        room = self.config.checkpoint_interval - self.ic
        if count < room:
            self.ic += count
            return 0
        self.ic += room
        self.end_interval(reason="length")
        return count - room

    def race_reply(self, remote_tid: int, remote_cid: int, remote_ic: int) -> None:
        """A coherence reply arrived: log the ordering edge unless implied."""
        if not self.active:
            return
        if self.reducer.should_log(remote_tid, remote_cid, remote_ic):
            self._mrl.append(MRLEntry(
                local_ic=self.ic,
                remote_tid=remote_tid,
                remote_cid=remote_cid,
                remote_ic=remote_ic,
            ))

    def remote_state(self) -> tuple[int, int, int]:
        """(TID, CID, IC) piggybacked on our coherence replies."""
        return self.tid, self.cid, self.ic

    # -- derived metrics ------------------------------------------------------

    @property
    def first_load_rate(self) -> float:
        """Fraction of loads that had to be logged."""
        return self.loads_logged / self.loads_seen if self.loads_seen else 0.0


class TracedMemoryInterface:
    """Data-memory interface that feeds the recorder and coherence.

    Sits between the CPU and the shared :class:`~repro.arch.memory.Memory`.
    Faults propagate *before* any tracking side effects, because a
    faulting access never commits and must not appear in the logs.
    """

    __slots__ = ("memory", "hierarchy", "recorder", "core_id", "directory",
                 "remote_state_of", "last_load", "last_store")

    def __init__(
        self,
        memory,
        hierarchy: FirstLoadHierarchy,
        recorder: BugNetRecorder,
        core_id: int = 0,
        directory=None,
        remote_state_of: Callable[[int], "tuple[int, int, int] | None"] | None = None,
    ) -> None:
        self.memory = memory
        self.hierarchy = hierarchy
        self.recorder = recorder
        self.core_id = core_id
        self.directory = directory
        self.remote_state_of = remote_state_of
        self.last_load: tuple[int, int] | None = None
        self.last_store: tuple[int, int] | None = None

    def _coherence(self, addr: int, is_store: bool) -> None:
        if self.directory is None:
            return
        block_addr = addr >> self.hierarchy.block_shift
        repliers = self.directory.access(self.core_id, block_addr, is_store)
        if repliers and self.remote_state_of is not None:
            for remote_core in repliers:
                state = self.remote_state_of(remote_core)
                if state is None:
                    # No thread with an open interval resides on the
                    # remote core: nothing valid to piggyback, so no MRL
                    # entry (the stale alternative would point at a
                    # closed, eventually recycled interval).
                    continue
                tid, cid, ic = state
                self.recorder.race_reply(tid, cid, ic)

    def load(self, addr: int) -> int:
        value = self.memory.load(addr)
        self._coherence(addr, is_store=False)
        first = self.hierarchy.access(addr, is_store=False)
        self.recorder.note_load(value, first)
        self.last_load = (addr, value)
        return value

    def store(self, addr: int, value: int) -> None:
        self.memory.store(addr, value)
        self._coherence(addr, is_store=True)
        self.hierarchy.access(addr, is_store=True)
        self.last_store = (addr, value & 0xFFFFFFFF)
