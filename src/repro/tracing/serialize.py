"""On-disk format for crash reports (the developer shipment).

The paper's workflow ends with the OS storing the collected logs "to a
persistent storage device" and sending them to the developer.  This
module defines that artifact: a compact, self-describing binary format
(magic ``BGNT``) holding the recorder configuration, the fault metadata,
the page map, and every (FLL, MRL) pair — everything
:class:`~repro.replay.replayer.Replayer` and the debugger need, and
nothing else (pointedly: no core dump).

The format is independent of Python object layout (no pickle), so
reports written by one version load in another as long as the format
version matches.
"""

from __future__ import annotations

import io
import struct
import zlib

from repro.common.config import BugNetConfig, DictionaryConfig
from repro.common.errors import LogDecodeError
from repro.system.fault import CrashReport
from repro.tracing.backing import StoredCheckpoint
from repro.tracing.fll import FLL, FLLHeader
from repro.tracing.mrl import MRL, MRLHeader

MAGIC = b"BGNT"
# Version 2 serializes the *complete* BugNetConfig (version 1 dropped
# checkpoint_buffer_bytes, race_buffer_bytes and log_memory_budget, so
# loading silently substituted defaults).  Version 1 reports still load.
VERSION = 2
_NO_BUDGET = 0xFFFFFFFFFFFFFFFF

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _write_u32(out: io.BytesIO, value: int) -> None:
    out.write(_U32.pack(value & 0xFFFFFFFF))


def _write_u64(out: io.BytesIO, value: int) -> None:
    out.write(_U64.pack(value & 0xFFFFFFFFFFFFFFFF))


def _write_bytes(out: io.BytesIO, data: bytes) -> None:
    _write_u32(out, len(data))
    out.write(data)


def _write_str(out: io.BytesIO, text: str) -> None:
    _write_bytes(out, text.encode("utf-8"))


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._view = memoryview(data)
        self._pos = 0

    def u32(self) -> int:
        value = _U32.unpack_from(self._view, self._pos)[0]
        self._pos += 4
        return value

    def u64(self) -> int:
        value = _U64.unpack_from(self._view, self._pos)[0]
        self._pos += 8
        return value

    def blob(self) -> bytes:
        length = self.u32()
        data = bytes(self._view[self._pos: self._pos + length])
        if len(data) != length:
            raise LogDecodeError("truncated crash report")
        self._pos += length
        return data

    def text(self) -> str:
        return self.blob().decode("utf-8")


def _dump_fll(out: io.BytesIO, fll: FLL) -> None:
    header = fll.header
    _write_u32(out, header.pid)
    _write_u32(out, header.tid)
    _write_u32(out, header.cid)
    _write_u64(out, header.timestamp)
    _write_u32(out, header.pc)
    _write_u32(out, 1 if header.major else 0)
    for reg in header.regs:
        _write_u32(out, reg)
    _write_bytes(out, fll.payload)
    _write_u32(out, fll.payload_bits)
    _write_u32(out, fll.num_records)
    _write_u32(out, fll.end_ic)
    _write_u32(out, 1 if fll.fault_pc is not None else 0)
    _write_u32(out, fll.fault_pc or 0)
    _write_u64(out, fll.raw_payload_bits)


def _load_fll(reader: _Reader) -> FLL:
    pid = reader.u32()
    tid = reader.u32()
    cid = reader.u32()
    timestamp = reader.u64()
    pc = reader.u32()
    major = bool(reader.u32())
    regs = tuple(reader.u32() for _ in range(32))
    payload = reader.blob()
    payload_bits = reader.u32()
    num_records = reader.u32()
    end_ic = reader.u32()
    has_fault = bool(reader.u32())
    fault_pc = reader.u32()
    raw_bits = reader.u64()
    return FLL(
        header=FLLHeader(pid=pid, tid=tid, cid=cid, timestamp=timestamp,
                         pc=pc, regs=regs, major=major),
        payload=payload,
        payload_bits=payload_bits,
        num_records=num_records,
        end_ic=end_ic,
        fault_pc=fault_pc if has_fault else None,
        raw_payload_bits=raw_bits,
    )


def _dump_mrl(out: io.BytesIO, mrl: MRL) -> None:
    header = mrl.header
    _write_u32(out, header.pid)
    _write_u32(out, header.tid)
    _write_u32(out, header.cid)
    _write_u64(out, header.timestamp)
    _write_bytes(out, mrl.payload)
    _write_u32(out, mrl.payload_bits)
    _write_u32(out, mrl.num_entries)


def _load_mrl(reader: _Reader) -> MRL:
    pid = reader.u32()
    tid = reader.u32()
    cid = reader.u32()
    timestamp = reader.u64()
    payload = reader.blob()
    payload_bits = reader.u32()
    num_entries = reader.u32()
    return MRL(
        header=MRLHeader(pid=pid, tid=tid, cid=cid, timestamp=timestamp),
        payload=payload,
        payload_bits=payload_bits,
        num_entries=num_entries,
    )


def dump_crash_report(
    report: CrashReport, config: BugNetConfig, version: int = VERSION
) -> bytes:
    """Serialize a crash report (zlib-compressed body).

    *version* exists for compatibility testing: version 1 writes the
    legacy layout (which drops the buffer sizes and the log budget).
    """
    if version not in (1, 2):
        raise ValueError(f"cannot write crash report version {version}")
    body = io.BytesIO()
    # Recorder configuration: the replayer must decode with the same
    # field widths.
    _write_u64(body, config.checkpoint_interval)
    _write_u32(body, config.reduced_lcount_bits)
    _write_u32(body, config.dictionary.entries)
    _write_u32(body, config.dictionary.counter_bits)
    _write_u32(body, config.max_live_threads)
    _write_u32(body, config.max_resident_checkpoints)
    _write_u32(body, config.bit_clear_period)
    if version >= 2:
        _write_u32(body, config.checkpoint_buffer_bytes)
        _write_u32(body, config.race_buffer_bytes)
        budget = config.log_memory_budget
        _write_u64(body, _NO_BUDGET if budget is None else budget)
    # Fault metadata.
    _write_u32(body, report.pid)
    _write_u32(body, report.faulting_tid)
    _write_str(body, report.fault_kind)
    _write_str(body, report.fault_message)
    _write_u32(body, report.fault_pc)
    _write_u32(body, report.fault_source_line)
    _write_str(body, report.program_name)
    # Page map.
    pages = sorted(report.mapped_pages)
    _write_u32(body, len(pages))
    for page in pages:
        _write_u64(body, page)
    # Per-thread totals.
    _write_u32(body, len(report.total_instructions))
    for tid, total in sorted(report.total_instructions.items()):
        _write_u32(body, tid)
        _write_u64(body, total)
    # Checkpoints.
    _write_u32(body, len(report.checkpoints))
    for tid in sorted(report.checkpoints):
        checkpoints = report.checkpoints[tid]
        _write_u32(body, tid)
        _write_u32(body, len(checkpoints))
        for checkpoint in checkpoints:
            _write_str(body, checkpoint.reason)
            _dump_fll(body, checkpoint.fll)
            _dump_mrl(body, checkpoint.mrl)
    compressed = zlib.compress(body.getvalue(), 6)
    out = io.BytesIO()
    out.write(MAGIC)
    _write_u32(out, version)
    _write_bytes(out, compressed)
    return out.getvalue()


def load_crash_report(data: bytes) -> tuple[CrashReport, BugNetConfig]:
    """Deserialize a crash report; returns (report, recorder config)."""
    if data[:4] != MAGIC:
        raise LogDecodeError("not a BugNet crash report (bad magic)")
    outer = _Reader(data[4:])
    version = outer.u32()
    if version not in (1, 2):
        raise LogDecodeError(f"unsupported crash report version {version}")
    reader = _Reader(zlib.decompress(outer.blob()))

    fields = dict(
        checkpoint_interval=reader.u64(),
        reduced_lcount_bits=reader.u32(),
        dictionary=DictionaryConfig(
            entries=reader.u32(), counter_bits=reader.u32(),
        ),
        max_live_threads=reader.u32(),
        max_resident_checkpoints=reader.u32(),
        bit_clear_period=reader.u32(),
    )
    if version >= 2:
        fields["checkpoint_buffer_bytes"] = reader.u32()
        fields["race_buffer_bytes"] = reader.u32()
        budget = reader.u64()
        fields["log_memory_budget"] = None if budget == _NO_BUDGET else budget
    config = BugNetConfig(**fields)
    pid = reader.u32()
    faulting_tid = reader.u32()
    fault_kind = reader.text()
    fault_message = reader.text()
    fault_pc = reader.u32()
    fault_source_line = reader.u32()
    program_name = reader.text()
    mapped_pages = frozenset(reader.u64() for _ in range(reader.u32()))
    totals = {}
    for _ in range(reader.u32()):
        tid = reader.u32()
        totals[tid] = reader.u64()
    checkpoints: dict[int, list[StoredCheckpoint]] = {}
    for _ in range(reader.u32()):
        tid = reader.u32()
        count = reader.u32()
        pool = []
        for _ in range(count):
            reason = reader.text()
            fll = _load_fll(reader)
            mrl = _load_mrl(reader)
            size = fll.byte_size(config) + mrl.byte_size(config)
            pool.append(StoredCheckpoint(tid=tid, fll=fll, mrl=mrl,
                                         byte_size=size, reason=reason))
        checkpoints[tid] = pool
    report = CrashReport(
        pid=pid,
        faulting_tid=faulting_tid,
        fault_kind=fault_kind,
        fault_message=fault_message,
        fault_pc=fault_pc,
        fault_source_line=fault_source_line,
        program_name=program_name,
        checkpoints=checkpoints,
        mapped_pages=mapped_pages,
        total_instructions=totals,
    )
    return report, config


class _Truncated(Exception):
    """Internal: the decompressed prefix ended mid-field."""


class _PrefixReader:
    """Bounded reader over a partial decompression: running off the end
    raises :class:`_Truncated` (feed more bytes) instead of misparsing."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise _Truncated
        piece = self._data[self._pos: end]
        self._pos = end
        return piece

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def text(self) -> str:
        return self._take(self.u32()).decode("utf-8")

    def skip(self, count: int) -> None:
        self._take(count)


class ReportHeader:
    """The fault-metadata prefix of a crash report (no logs decoded)."""

    __slots__ = ("pid", "faulting_tid", "fault_kind", "fault_message",
                 "fault_pc", "fault_source_line", "program_name")

    def __init__(self, pid: int, faulting_tid: int, fault_kind: str,
                 fault_message: str, fault_pc: int, fault_source_line: int,
                 program_name: str) -> None:
        self.pid = pid
        self.faulting_tid = faulting_tid
        self.fault_kind = fault_kind
        self.fault_message = fault_message
        self.fault_pc = fault_pc
        self.fault_source_line = fault_source_line
        self.program_name = program_name


#: Fixed recorder-config block size per format version (the fields
#: written before the fault metadata in dump_crash_report).
_CONFIG_BYTES = {1: 32, 2: 48}
_PREFIX_STEP = 4096


def _parse_header_prefix(buffer: bytes, version: int) -> ReportHeader:
    reader = _PrefixReader(buffer)
    reader.skip(_CONFIG_BYTES[version])
    return ReportHeader(
        pid=reader.u32(),
        faulting_tid=reader.u32(),
        fault_kind=reader.text(),
        fault_message=reader.text(),
        fault_pc=reader.u32(),
        fault_source_line=reader.u32(),
        program_name=reader.text(),
    )


def load_report_header(data: bytes) -> ReportHeader:
    """Decode only the fault metadata of a crash report.

    The admission cache's signature-prefix probe cross-checks a cached
    entry against the blob's own claims (program, fault kind, fault
    PC); fully decoding every per-thread log for that would cost a
    measurable slice of the replay the cache exists to skip.  This
    decompresses just enough of the body to cover the recorder-config
    block and the fault metadata and stops — no page map, no FLL/MRL
    payloads.  Raises the same decode errors as
    :func:`load_crash_report` on a corrupt or truncated blob.
    """
    if data[:4] != MAGIC:
        raise LogDecodeError("not a BugNet crash report (bad magic)")
    outer = _Reader(data[4:])
    version = outer.u32()
    if version not in (1, 2):
        raise LogDecodeError(f"unsupported crash report version {version}")
    compressed = outer.blob()
    decompressor = zlib.decompressobj()
    buffer = decompressor.decompress(compressed, _PREFIX_STEP)
    while True:
        try:
            return _parse_header_prefix(buffer, version)
        except _Truncated:
            tail = decompressor.unconsumed_tail
            more = decompressor.decompress(tail, _PREFIX_STEP) if tail else b""
            if not more:
                raise LogDecodeError("truncated crash report")
            buffer += more


def save_crash_report(path, report: CrashReport, config: BugNetConfig) -> int:
    """Write a report to *path*; returns bytes written."""
    data = dump_crash_report(report, config)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def read_crash_report(path) -> tuple[CrashReport, BugNetConfig]:
    """Load a report from *path*."""
    with open(path, "rb") as handle:
        return load_crash_report(handle.read())
