"""Workloads: SPEC-like synthetic personalities and the Table-1 bug suite.

The paper's sensitivity studies (Figures 3-6) run SPEC 2000 binaries
under Pin; its bug studies (Table 1, Figure 2) run 18 open-source
programs with known bugs.  Neither is available offline, so:

* :mod:`repro.workloads.values` + :mod:`repro.workloads.access` model
  load-value locality and memory-reference behaviour,
* :mod:`repro.workloads.spec` defines seven seeded personalities
  (art, bzip2, crafty, gzip, mcf, parser, vpr),
* :mod:`repro.workloads.trace` drives the real recorder from those
  synthetic event streams (sharing the cache/dictionary/FLL code with
  the full-system machine),
* :mod:`repro.workloads.bugs` reimplements each Table-1 bug *class* as a
  runnable BN32 program with a root-cause annotation,
* :mod:`repro.workloads.randprog` generates random well-defined programs
  for property-based record/replay testing.
"""

from repro.workloads.bugs import BUG_SUITE, BugProgram, run_bug
from repro.workloads.spec import SPEC_WORKLOADS, SpecPersonality
from repro.workloads.trace import TraceEngine, TraceStats

__all__ = [
    "SPEC_WORKLOADS",
    "SpecPersonality",
    "TraceEngine",
    "TraceStats",
    "BUG_SUITE",
    "BugProgram",
    "run_bug",
]
