"""Memory-reference models: where loads and stores go.

A workload's FLL size is driven by how many *distinct words* it touches
per checkpoint interval (the first-load working set) and how quickly it
revisits them.  Each personality mixes reference regions:

* ``zipf`` — a footprint addressed with log-uniform ranks: a hot head
  that stops being logged almost immediately and a cold tail that keeps
  producing first loads (globals, hash tables, board state),
* ``stream`` — a sequential walk with wraparound (compression windows,
  matrix sweeps): every new block is a burst of first loads,
* ``chase`` — pseudo-random jumps through a large footprint (pointer
  chasing à la mcf/parser): high first-load rate, cache-hostile.

Addresses are word-aligned and region footprints are in words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Region:
    """One reference region of a workload's address space."""

    kind: str           # "zipf" | "stream" | "chase"
    base: int           # starting byte address (word aligned)
    footprint: int      # words
    weight: float       # fraction of references landing here
    stride: int = 1     # words per step, stream regions only

    def __post_init__(self) -> None:
        if self.kind not in ("zipf", "stream", "chase"):
            raise ValueError(f"unknown region kind {self.kind!r}")
        if self.base & 3:
            raise ValueError("region base must be word aligned")
        if self.footprint < 1:
            raise ValueError("footprint must be positive")


class AccessModel:
    """Samples addresses from a weighted mixture of regions.

    Stateful: stream regions keep their walk position across batches so
    sequential behaviour survives chunked generation.
    """

    def __init__(self, regions: list[Region]) -> None:
        if not regions:
            raise ValueError("need at least one region")
        total = sum(r.weight for r in regions)
        if total <= 0:
            raise ValueError("region weights must sum to a positive value")
        self.regions = regions
        self._weights = np.array([r.weight / total for r in regions])
        self._cursors = [0] * len(regions)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw *count* byte addresses as a uint64 numpy array."""
        which = rng.choice(len(self.regions), size=count, p=self._weights)
        out = np.empty(count, dtype=np.uint64)
        for index, region in enumerate(self.regions):
            mask = which == index
            number = int(mask.sum())
            if not number:
                continue
            if region.kind == "zipf":
                ranks = np.power(
                    float(region.footprint), rng.random(number)
                ).astype(np.int64) - 1
                words = np.clip(ranks, 0, region.footprint - 1)
            elif region.kind == "stream":
                start = self._cursors[index]
                steps = np.arange(1, number + 1, dtype=np.int64) * region.stride
                words = (start + steps) % region.footprint
                self._cursors[index] = int(words[-1])
            else:  # chase
                words = rng.integers(0, region.footprint, size=number, dtype=np.int64)
            out[mask] = region.base + 4 * words.astype(np.uint64)
        return out

    @property
    def total_footprint_words(self) -> int:
        """Total distinct words addressable across regions."""
        return sum(r.footprint for r in self.regions)
