"""The Table-1 bug suite: 18 programs with known bugs.

Each entry reproduces one row of the paper's Table 1 as a runnable BN32
program: the same bug *class* (what gets corrupted and how the crash
manifests), a ``root_cause`` label on the instruction a bug-fix would
change, and work sized so the dynamic distance from the last execution
of the root cause to the crash lands near the paper's replay-window
number.  Windows above one million instructions are scaled 1:100
(``scale=100``) because the pure-Python interpreter cannot execute tens
of millions of instructions in benchmark time; FLL size is linear in
window length (Figure 4), so reported numbers are rescaled and marked.

The suite covers every bug class in the paper: heap corruption through
a misused bounds variable, global/stack buffer overflows from long
input filenames, dangling pointers, null pointer and null function
pointer dereferences, and arithmetic overflow feeding a wild access —
plus the four multithreaded entries (gaim, napster, python, w3m).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.assembler import assemble
from repro.arch.program import Program
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine, MachineResult

_WORK_SETUP = 5          # li/la/li prologue of a work loop (upper bound)
_WORK_PER_ITER = 7       # instructions per work-loop iteration


def _work(tag: str, iters: int, buf: str = "workbuf") -> str:
    """A checksum loop: ~7 instructions and one load per iteration."""
    iters = max(iters, 1)
    return f"""
    li   t8, {iters}
    la   t9, {buf}
    li   t7, 0
work_{tag}:
    andi t6, t8, 0xFF
    sll  t6, t6, 2
    add  t6, t9, t6
    lw   t5, 0(t6)
    add  t7, t7, t5
    addi t8, t8, -1
    bnez t8, work_{tag}
"""


def _iters(window: int, overhead: int = 24) -> int:
    """Work iterations so the post-root-cause distance ≈ *window*."""
    return max((window - overhead - _WORK_SETUP) // _WORK_PER_ITER, 1)


@dataclass(frozen=True)
class BugProgram:
    """One Table-1 row, reproduced."""

    name: str
    description: str
    bug_location: str
    paper_window: int
    source: str
    scale: int = 1
    expect_fault: tuple[str, ...] = ("memory",)
    threads: int = 1
    entries: tuple[str, ...] = ("main",)
    input_text: str | None = None
    input_words: tuple[int, ...] = ()
    dma_delay: int = 0
    max_instructions: int = 4_000_000
    # The `bugnet lint` check expected to flag this bug statically, or
    # None when the defect is input- or loop-iteration-dependent and a
    # sound static pass cannot see it (tests pin this table).
    expected_lint: str | None = None

    @property
    def multithreaded(self) -> bool:
        """True for the paper's four multithreaded programs."""
        return self.threads > 1

    @property
    def target_window(self) -> int:
        """The (possibly scaled) window this reproduction aims for."""
        return self.paper_window // self.scale

    def program(self) -> Program:
        """Assemble the source, stamped with the declared thread entries."""
        program = assemble(self.source, name=self.name)
        program.thread_entries = self.entries
        return program


@dataclass
class BugRunResult:
    """Outcome of one recorded bug run."""

    bug: BugProgram
    result: MachineResult
    machine: Machine
    program: Program
    window: int = 0
    root_thread: int = -1

    @property
    def crashed(self) -> bool:
        """Did the run fault as expected."""
        return self.result.crashed

    @property
    def scaled_window(self) -> int:
        """Window rescaled to paper units."""
        return self.window * self.bug.scale


def run_bug(
    bug: BugProgram,
    bugnet: BugNetConfig | None = None,
    record: bool = True,
    collect_traces: bool = False,
    interleave_seed: int = 0,
) -> BugRunResult:
    """Run one bug program to its crash and measure the replay window.

    The window is the dynamic instruction distance from the *last*
    execution of the ``root_cause`` instruction to the crash — measured
    on the faulting thread when the root cause is local to it, and in
    globally interleaved instructions when another thread planted it
    (the multithreaded gaim/napster cases).

    *interleave_seed* selects the multiprocessor schedule (0: rotating
    round-robin; non-zero: seeded random core picks) — how fleet-sim
    synthesizes schedule-different manifestations of one racy bug.
    """
    program = bug.program()
    cores = bug.threads if bug.threads > 1 else 1
    machine = Machine(
        program,
        MachineConfig(num_cores=cores, interleave_seed=interleave_seed),
        bugnet or BugNetConfig(checkpoint_interval=100_000),
        record=record,
        collect_traces=collect_traces,
        dma_delay=bug.dma_delay,
    )
    if bug.input_text is not None:
        machine.input.push_string(bug.input_text)
    if bug.input_words:
        machine.input.push_words(list(bug.input_words))
    root_pc = program.pc_of("root_cause")
    machine.watch_pcs.add(root_pc)
    for index in range(bug.threads):
        entry = bug.entries[index] if index < len(bug.entries) else bug.entries[-1]
        machine.spawn(entry=entry)
    result = machine.run(max_instructions=bug.max_instructions)
    run = BugRunResult(bug=bug, result=result, machine=machine, program=program)
    if result.crashed:
        fault_tid = result.crash.faulting_tid
        hits = {
            tid: stamp for (tid, pc), stamp in machine.pc_hits.items()
            if pc == root_pc
        }
        if fault_tid in hits:
            run.root_thread = fault_tid
            thread_ic, _global = hits[fault_tid]
            fault_ic = machine.kernel.thread(fault_tid).cpu.inst_count
            run.window = fault_ic - thread_ic + 1
        elif hits:
            run.root_thread = next(iter(hits))
            _thread_ic, global_hit = hits[run.root_thread]
            run.window = result.global_steps - global_hit + 1
    return run


# --------------------------------------------------------------------------
# The 18 programs.
# --------------------------------------------------------------------------

def _bc() -> BugProgram:
    window = 591
    source = f"""
.data
arr_count: .word 4
workbuf:   .space 2048
.text
main:
    li   a0, 320
    li   v0, 6
    syscall                     # allocate object storage
    move s0, v0
    li   t0, 0
init_objs:                      # five objects: [data_ptr, value]
    sll  t1, t0, 4
    add  t1, s0, t1
    addi t2, t1, 4
    sw   t2, 0(t1)
    sw   zero, 4(t1)
    addi t0, t0, 1
    blt  t0, 5, init_objs
    lw   t3, arr_count          # v_count, misused as the copy bound
    li   t0, 0
grow:                           # storage.c:176 — copies with <=, one too far
    sll  t1, t0, 4
    add  t1, s0, t1
root_cause:
    sw   zero, 0(t1)            # t0 == 4 clobbers obj[4].data_ptr
    addi t0, t0, 1
    ble  t0, t3, grow
{_work('bc', _iters(window, overhead=14))}
    li   t4, 4                  # interpreter touches the corrupted object
    sll  t1, t4, 4
    add  t1, s0, t1
    lw   t5, 0(t1)              # loads the null data_ptr
    lw   t6, 0(t5)              # crash: null dereference
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="bc-1.06",
        description="Misuse of bounds variable corrupts heap objects",
        bug_location="storage.c line 176",
        paper_window=window,
        source=source,
    )


def _gzip_bug() -> BugProgram:
    window = 32_209
    source = f"""
.data
ifname:     .space 4096         # 1024-word global filename buffer
window_ptr: .word 0             # the neighbour the overflow clobbers
inbuf:      .space 8192
workbuf:    .space 2048
.text
main:
    li   a0, 4096
    li   v0, 6
    syscall
    sw   v0, window_ptr         # valid compression window
    la   a0, inbuf
    li   a1, 2048
    li   v0, 4
    syscall                     # read the (too long) input filename
    la   t0, inbuf
    la   t1, ifname
copy:                           # gzip.c:1009 — strcpy with no bound
    lw   t2, 0(t0)
root_cause:
    sw   t2, 0(t1)              # word 1024 lands on window_ptr
    addi t0, t0, 4
    addi t1, t1, 4
    bnez t2, copy
{_work('gz', _iters(window, overhead=12))}
    lw   t3, window_ptr         # deflate flushes through the window
    lw   t4, 0(t3)              # crash: pointer is now a character
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="gzip-1.2.4",
        description="1024 byte long input filename overflows global variable",
        bug_location="gzip.c line 1009",
        paper_window=window,
        source=source,
        input_text="A" * 1024 + "B",
    )


def _ncompress() -> BugProgram:
    window = 17_966
    source = f"""
.data
inbuf:   .space 8192
workbuf: .space 2048
.text
main:
    la   a0, inbuf
    li   a1, 2048
    li   v0, 4
    syscall
    jal  comprexx
    li   v0, 1
    syscall
comprexx:                       # compress42.c:886
    addi sp, sp, -4160          # tbuf[1024] + saved ra
    sw   ra, 4156(sp)
    la   t0, inbuf
    move t1, sp
ccopy:
    lw   t2, 0(t0)
root_cause:
    sw   t2, 0(t1)              # word 1039 smashes the saved ra
    addi t0, t0, 4
    addi t1, t1, 4
    bnez t2, ccopy
{_work('nc', _iters(window, overhead=16))}
    lw   ra, 4156(sp)
    addi sp, sp, 4160
    jr   ra                     # crash: return to 0x41 ('A')
"""
    return BugProgram(
        name="ncompress-4.2.4",
        description="1024 byte long input filename corrupts stack return address",
        bug_location="compress42.c line 886",
        paper_window=window,
        source=source,
        expect_fault=("instruction",),
        input_text="A" * 1040,
    )


def _polymorph() -> BugProgram:
    window = 6_208
    source = f"""
.data
inbuf:   .space 16384
workbuf: .space 2048
.text
main:
    la   a0, inbuf
    li   a1, 4096
    li   v0, 4
    syscall
    jal  convert
    li   v0, 1
    syscall
convert:                        # polymorph.c:193/200 — lowercasing copy
    addi sp, sp, -8256          # 2048-word name buffer + saved ra
    sw   ra, 8252(sp)
    la   t0, inbuf
    move t1, sp
pcopy:
    lw   t2, 0(t0)
    ori  t2, t2, 0x20           # tolower for ASCII letters
root_cause:
    sw   t2, 0(t1)              # word 2063 smashes the saved ra
    addi t0, t0, 4
    addi t1, t1, 4
    andi t3, t2, 0xDF
    bnez t3, pcopy
{_work('pm', _iters(window, overhead=18))}
    lw   ra, 8252(sp)
    addi sp, sp, 8256
    jr   ra                     # crash: return to a lowercased character
"""
    return BugProgram(
        name="polymorph-0.4.0",
        description="2048 byte long input filename corrupts stack return address",
        bug_location="polymorph.c lines 193, 200",
        paper_window=window,
        source=source,
        expect_fault=("instruction",),
        input_text="A" * 2064,
    )


def _tar() -> BugProgram:
    window = 6_634
    source = f"""
.data
nextblk: .word 0
workbuf: .space 2048
.text
main:
    li   a0, 256
    li   v0, 6
    syscall                     # block A: 64 words
    move s0, v0
    li   a0, 64
    li   v0, 6
    syscall                     # block B, adjacent (bump allocator)
    move s1, v0
    sw   s1, nextblk
    sw   zero, 0(s1)            # B.next = NULL
    li   t0, 0
fill:                           # prepargs.c:92 — loop bound is <= not <
    sll  t1, t0, 2
    add  t1, s0, t1
root_cause:
    sw   t0, 0(t1)              # t0 == 64 writes into B.next
    addi t0, t0, 1
    ble  t0, 64, fill
{_work('tar', _iters(window, overhead=14))}
    lw   t2, nextblk            # walk the block list
    lw   t3, 0(t2)              # B.next, corrupted to 64
    beqz t3, tdone
    lw   t4, 0(t3)              # crash: load from address 64
tdone:
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="tar-1.13.25",
        description="Incorrect loop bounds leads to heap object overflow",
        bug_location="prepargs.c line 92",
        paper_window=window,
        source=source,
    )


def _ghostscript() -> BugProgram:
    window = 18_030_519
    scale = 100
    source = f"""
.data
freelist: .word 0
workbuf:  .space 2048
.text
main:
    li   a0, 512
    li   v0, 6
    syscall                     # glyph buffer A
    move s0, v0
    sw   s0, freelist           # free(A): push on the free list
    lw   s1, freelist           # alloc reuses A for the offsets table B
    sw   zero, freelist
    li   t0, 0
ginit:                          # B[i] = small valid offsets
    sll  t1, t0, 2
    add  t1, s1, t1
    sw   zero, 0(t1)
    addi t0, t0, 1
    blt  t0, 128, ginit
    li   t0, 0x0BAD0000         # ttobjs.c:279 — stale pointer survives
root_cause:
    sw   t0, 64(s0)             # dangling write corrupts B[16]
{_work('gs', _iters(window // scale, overhead=10))}
    lw   t1, 64(s1)             # ttinterp.c:5108 consumes the offset
    lw   t2, 0(t1)              # crash: wild pointer
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="ghostscript-8.12",
        expected_lint="wild-address",
        description="A dangling pointer results in a memory corruption",
        bug_location="ttinterp.c line 5108, ttobjs.c line 279",
        paper_window=window,
        scale=scale,
        source=source,
    )


def _gnuplot_1() -> BugProgram:
    window = 782
    source = f"""
.data
outstr:  .word 0
workbuf: .space 2048
.text
main:
    li   t0, 1                  # "set term pslatex" option parsing
    sw   t0, workbuf
root_cause:
    sw   zero, outstr           # pslatex.trm:189 — forgets the file name
{_work('gp1', _iters(window, overhead=8))}
    lw   t1, outstr             # term driver opens the output file
    lw   t2, 8(t1)              # crash: null dereference
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="gnuplot-3.7.1-1",
        expected_lint="null-deref",
        description="Null pointer dereference due to not setting a file name",
        bug_location="pslatex.trm line 189",
        paper_window=window,
        source=source,
    )


def _gnuplot_2() -> BugProgram:
    window = 131_751
    source = f"""
.data
inbuf:   .space 4096
workbuf: .space 2048
.text
main:
    la   a0, inbuf
    li   a1, 1024
    li   v0, 4
    syscall                     # read the plot command line
    jal  do_plot
    li   v0, 1
    syscall
do_plot:                        # plot.c:622
    addi sp, sp, -2112          # 512-word token buffer + saved ra
    sw   ra, 2108(sp)
    la   t0, inbuf
    move t1, sp
gcopy:
    lw   t2, 0(t0)
root_cause:
    sw   t2, 0(t1)              # word 527 smashes the saved ra
    addi t0, t0, 4
    addi t1, t1, 4
    bnez t2, gcopy
{_work('gp2', _iters(window, overhead=16))}
    lw   ra, 2108(sp)
    addi sp, sp, 2112
    jr   ra                     # crash: return into plot data
"""
    return BugProgram(
        name="gnuplot-3.7.1-2",
        description="A buffer overflow corrupts the stack return address",
        bug_location="plot.c line 622",
        paper_window=window,
        source=source,
        expect_fault=("instruction",),
        input_text="p" * 528,
    )


def _tidy_1() -> BugProgram:
    window = 2_537_326
    scale = 100
    source = f"""
.data
istack_top: .word 0
workbuf:    .space 2048
.text
main:
    sw   zero, istack_top       # the inline stack is empty
root_cause:
    lw   s0, istack_top         # istack.c:31 — pop without a check
{_work('td1', _iters(window // scale, overhead=6))}
    lw   t0, 4(s0)              # crash: null dereference
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="tidy-34132-1",
        expected_lint="null-deref",
        description="Null pointer dereference",
        bug_location="istack.c at line 31",
        paper_window=window,
        scale=scale,
        source=source,
    )


def _tidy_2() -> BugProgram:
    window = 13
    source = """
.data
nodes:   .space 64              # table of node pointers
workbuf: .space 2048
.text
main:
    la   s0, nodes
    li   t0, 0x10               # a "node" forged from attribute bytes
root_cause:
    sw   t0, 8(s0)              # parser.c:3505 — corrupts nodes[2]
    li   t1, 2
    sll  t1, t1, 2
    add  t1, s0, t1
    lw   t2, 0(t1)              # immediately consumed
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    lw   t3, 0(t2)              # crash: address 0x10, page zero
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="tidy-34132-2",
        expected_lint="null-deref",
        description="Memory corruption",
        bug_location="parser.c at line 3505",
        paper_window=window,
        source=source,
    )


def _tidy_3() -> BugProgram:
    window = 59
    source = """
.data
nodes:   .space 64
workbuf: .space 2048
.text
main:
    la   s0, nodes
    li   t0, 0x20
root_cause:
    sw   t0, 12(s0)             # parser.c — clobbers nodes[3]
    li   t4, 0
    li   t5, 8
tloop:                          # a short cleanup pass runs first
    sll  t6, t4, 2
    add  t6, s0, t6
    lw   t7, 16(t6)
    add  t7, t7, t4
    sw   t7, 16(t6)
    addi t4, t4, 1
    blt  t4, t5, tloop
    lw   t2, 12(s0)
    lw   t3, 0(t2)              # crash: address 0x20
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="tidy-34132-3",
        description="Memory corruption",
        bug_location="parser.c",
        paper_window=window,
        source=source,
    )


def _xv_1() -> BugProgram:
    window = 44_557
    source = f"""
.data
workbuf: .space 2048
.text
main:
    addi sp, sp, -512           # caller frames the overflow spills into
    jal  load_bmp
    li   v0, 1
    syscall
load_bmp:                       # xvbmp.c:168 — trusts the header width
    addi sp, sp, -1056          # 256-word row buffer + saved ra
    sw   ra, 1052(sp)
    addi a0, sp, 1040           # header lands above the row buffer
    li   a1, 2
    li   v0, 4
    syscall                     # read [width, height]
    lw   s0, 1040(sp)           # width = 300, never bound-checked
    move t1, sp
    li   t0, 0
brow:
    addi a0, sp, 1048
    li   a1, 1
    li   v0, 4
    syscall                     # next pixel word
    lw   t2, 1048(sp)
root_cause:
    sw   t2, 0(t1)              # word 262 smashes the saved ra
    addi t1, t1, 4
    addi t0, t0, 1
    blt  t0, s0, brow
{_work('xv1', _iters(window, overhead=24))}
    lw   ra, 1052(sp)
    addi sp, sp, 1056
    jr   ra                     # crash: return into pixel data
"""
    return BugProgram(
        name="xv-3.10a-1",
        description="Incorrect bound checking leads to stack buffer overflow",
        bug_location="xvbmp.c line 168",
        paper_window=window,
        source=source,
        expect_fault=("instruction",),
        input_words=tuple([300, 1] + [0x0101 + i for i in range(300)]),
    )


def _xv_2() -> BugProgram:
    window = 7_543_600
    scale = 100
    source = f"""
.data
inbuf:   .space 8192
workbuf: .space 2048
.text
main:
    la   a0, inbuf
    li   a1, 2048
    li   v0, 4
    syscall
    jal  browse
    li   v0, 1
    syscall
browse:                         # xvbrowse.c:956 / xvdir.c:1200
    addi sp, sp, -4160          # 1024-word name buffer + saved ra
    sw   ra, 4156(sp)
    la   t0, inbuf
    move t1, sp
xcopy:
    lw   t2, 0(t0)
root_cause:
    sw   t2, 0(t1)              # word 1039 smashes the saved ra
    addi t0, t0, 4
    addi t1, t1, 4
    bnez t2, xcopy
{_work('xv2', _iters(window // scale, overhead=16))}
    lw   ra, 4156(sp)
    addi sp, sp, 4160
    jr   ra                     # crash: return into the file name
"""
    return BugProgram(
        name="xv-3.10a-2",
        description="A long file name results in a buffer overflow",
        bug_location="xvbrowse.c line 956, xvdir.c line 1200",
        paper_window=window,
        scale=scale,
        source=source,
        expect_fault=("instruction",),
        input_text="N" * 1040,
    )


def _gaim() -> BugProgram:
    window = 74_590
    # Thread 1 removes the buddy roughly half-way through one of thread
    # 0's repaint passes; thread 0 crashes at its next dereference.  With
    # both threads running, global instructions accrue at ~2x the UI
    # thread's rate, so the expected global distance is ~one UI pass.
    # Windows here are inherently approximate — they depend on where in
    # the pass the removal lands.
    #
    # The paper's Table 1 names FOUR defect lines for this one bug
    # (gtkdialogs.c 759/820/862/901): the same unsynchronized removal
    # crashes whichever buddy dereference the schedule reaches next.
    # The UI pass therefore touches the slot at four sites — repaint
    # at mid-pass, then tooltip/context-menu/log-viewer clustered near
    # the pass end.  The removal lands (schedule-dependently) right at
    # the repaint site's neighborhood, so different interleave seeds
    # genuinely crash at different PCs, while the round-robin default
    # keeps the measured window near the paper's number — exactly the
    # schedule-different manifestations race-aware fleet signatures
    # must bucket into one crash bucket.
    half = (window // 2 - 40) // _WORK_PER_ITER
    cluster_gap = 70
    deref = """
ui_{site}:
    lw   t0, 0(s0)              # gtkdialogs.c — no liveness check
    lw   t1, 0(t0)              # crash here once the slot is nulled
"""
    source = f"""
.data
buddies: .word 0, 0, 0, 0
workbuf: .space 2048
.text
main:                           # UI thread: repaint loop
    la   s0, buddies
    li   a0, 64
    li   v0, 6
    syscall
    sw   v0, 0(s0)              # one live buddy
ui_loop:
{_work('ui_a', half)}
{deref.format(site='repaint')}
{_work('ui_b', half - 2 * cluster_gap)}
{deref.format(site='tooltip')}
{_work('ui_c', cluster_gap)}
{deref.format(site='ctxmenu')}
{_work('ui_d', cluster_gap)}
{deref.format(site='logview')}
    b    ui_loop

worker:                         # removal thread
    la   s0, buddies
{_work('rm', _iters(window // 2 + 500, overhead=30))}
root_cause:
    sw   zero, 0(s0)            # remove the buddy, UI never told
{_work('rm2', _iters(window * 2, overhead=30))}
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="gaim-0.82.1",
        expected_lint="race-candidate",
        description="Buddy list remove operations causes null pointer dereference",
        bug_location="gtkdialogs.c line 759, 820, 862, 901",
        paper_window=window,
        source=source,
        threads=2,
        entries=("main", "worker"),
    )


def _napster() -> BugProgram:
    window = 189_391
    source = f"""
.data
screen_ptr: .word 0
freelist:   .word 0
workbuf:    .space 2048
.text
main:                           # render thread holds a stale pointer
    li   a0, 256
    li   v0, 6
    syscall
    sw   v0, screen_ptr
    move s1, v0                 # stale copy kept across the resize
{_work('np0', _iters(window // 3, overhead=40))}
    li   t0, 0x0BAD0000
    sw   t0, 4(s1)              # write through the stale pointer
    li   v0, 1
    syscall

resizer:                        # nap.c:1391 — terminal resize
    la   s0, screen_ptr
{_work('np1', _iters(window // 4, overhead=30))}
    lw   t1, 0(s0)
root_cause:
    sw   t1, freelist           # free(screen) ... but renderers keep it
    lw   t2, freelist           # realloc reuses the same block
    sw   zero, freelist
    sw   t2, 0(s0)
{_work('np2', _iters(window, overhead=40))}
    lw   t3, 0(s0)
    lw   t4, 4(t3)              # metadata word, corrupted by the render
    beqz t4, rdone
    lw   t5, 0(t4)              # crash: wild pointer
rdone:
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="napster-1.5.2",
        expected_lint="race-candidate",
        description="Dangling pointer corrupts memory when resizing terminal",
        bug_location="nap.c line 1391",
        paper_window=window,
        source=source,
        threads=2,
        entries=("main", "resizer"),
    )


def _python_1() -> BugProgram:
    window = 92
    source = """
.data
samples: .space 1024
workbuf: .space 2048
.text
main:                           # audioop.c:939/966
    la   s0, samples
    li   s1, 0x00010000         # sample count from the caller
    li   s2, 0x00010000         # frame size
root_cause:
    mul  t0, s1, s2             # overflows to 0: size check passes
    nop
    nop
    nop
    li   t4, 0
    li   t5, 12
acheck:                         # argument validation loop (~90 instr)
    sll  t6, t4, 2
    add  t6, s0, t6
    lw   t7, 0(t6)
    add  t7, t7, t4
    sw   t7, 0(t6)
    addi t4, t4, 1
    blt  t4, t5, acheck
    addi t1, t0, -4             # "last sample" index = -4
    add  t2, s0, t1
    lw   t3, 0(t2)              # crash: samples[-1], below the segment
    li   v0, 1
    syscall

pyworker:
    la   s0, workbuf
    li   t0, 0
pyw:
    sll  t1, t0, 2
    andi t1, t1, 0xFF
    add  t1, s0, t1
    lw   t2, 0(t1)
    addi t0, t0, 1
    blt  t0, 200, pyw
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="python-2.1.1-1",
        expected_lint="wild-address",
        description="Arithmetic computation results in buffer overflow",
        bug_location="audioop.c line 939, line 966",
        paper_window=window,
        source=source,
        threads=2,
        entries=("main", "pyworker"),
    )


def _python_2() -> BugProgram:
    window = 941
    source = f"""
.data
sysdict: .word 0
workbuf: .space 2048
.text
main:                           # sysmodule.c:76
root_cause:
    sw   zero, sysdict          # interpreter teardown clears sys.__dict__
{_work('py2', _iters(window, overhead=8))}
    lw   t0, sysdict
    lw   t1, 4(t0)              # crash: null dereference
    li   v0, 1
    syscall

pyworker2:
    la   s0, workbuf
    li   t0, 0
pyw2:
    sll  t1, t0, 2
    andi t1, t1, 0xFF
    add  t1, s0, t1
    lw   t2, 0(t1)
    addi t0, t0, 1
    blt  t0, 400, pyw2
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="python-2.1.1-2",
        expected_lint="null-deref",
        description="A null pointer dereference leads to a crash",
        bug_location="sysmodule.c line 76",
        paper_window=window,
        source=source,
        threads=2,
        entries=("main", "pyworker2"),
    )


def _w3m() -> BugProgram:
    window = 79_309
    source = f"""
.data
handlers: .word 0, 0, 0, 0      # stream handler table
workbuf:  .space 2048
.text
main:                           # istream.c:445
    la   s0, handlers
    la   t0, good_handler
    sw   t0, 0(s0)
root_cause:
    sw   zero, 4(s0)            # the obsolete SSL handler entry stays null
{_work('w3m', _iters(window, overhead=16))}
    lw   t1, 4(s0)              # dispatch on stream type 1
    jalr t1                     # crash: call through a null pointer
    li   v0, 1
    syscall
good_handler:
    jr   ra

networker:
    la   s0, workbuf
    li   t0, 0
w3w:
    sll  t1, t0, 2
    andi t1, t1, 0xFF
    add  t1, s0, t1
    lw   t2, 0(t1)
    addi t2, t2, 1
    sw   t2, 0(t1)
    addi t0, t0, 1
    blt  t0, 3000, w3w
    li   v0, 1
    syscall
"""
    return BugProgram(
        name="w3m-0.3.2.2",
        expected_lint="null-deref",
        description="Null (obsolete) function pointer dereference causes a crash",
        bug_location="istream.c line 445",
        paper_window=window,
        source=source,
        expect_fault=("instruction",),
        threads=2,
        entries=("main", "networker"),
    )


def _build_suite() -> list[BugProgram]:
    return [
        _bc(), _gzip_bug(), _ncompress(), _polymorph(), _tar(),
        _ghostscript(), _gnuplot_1(), _gnuplot_2(),
        _tidy_1(), _tidy_2(), _tidy_3(),
        _xv_1(), _xv_2(),
        _gaim(), _napster(), _python_1(), _python_2(), _w3m(),
    ]


BUG_SUITE: list[BugProgram] = _build_suite()
BUGS_BY_NAME: dict[str, BugProgram] = {bug.name: bug for bug in BUG_SUITE}
