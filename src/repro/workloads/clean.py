"""Clean BN32 workloads named after the seven SPEC personalities.

``workloads/spec.py`` models the SPEC 2000 benchmarks statistically for
the compression figures; these are small *executable* BN32 programs in
the same spirit — each mimics its benchmark's memory behaviour (array
sweeps, streaming windows, hash probing, pointer chasing) — that are
**bug-free by construction**: every register is written before it is
read, every access stays inside mapped segments, and every program
runs to a clean exit.

They are the negative corpus for ``bugnet lint``: tests and CI pin
that the checkers produce zero findings here, so every finding on the
bug suite is signal, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.assembler import assemble
from repro.arch.program import Program
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine, MachineResult


@dataclass(frozen=True)
class CleanProgram:
    """One clean workload: a personality-flavoured BN32 program."""

    name: str
    description: str
    source: str

    def program(self) -> Program:
        """Assemble the source."""
        program = assemble(self.source, name=self.name)
        program.thread_entries = ("main",)
        return program


def run_clean(clean: CleanProgram, max_instructions: int = 200_000) -> MachineResult:
    """Execute a clean workload to completion (no recording)."""
    program = clean.program()
    machine = Machine(
        program,
        MachineConfig(num_cores=1),
        BugNetConfig(checkpoint_interval=100_000),
        record=False,
    )
    machine.spawn(entry="main")
    return machine.run(max_instructions=max_instructions)


def _art() -> CleanProgram:
    # Neural-net array sweeps: a hot data-segment footprint scanned in
    # loops with an accumulating weight.
    source = """
.data
weights: .space 256
signal:  .word 3, 1, 4, 1, 5, 9, 2, 6
.text
main:
    la   s0, weights
    la   s1, signal
    li   s2, 0                  # epoch counter
epoch:
    li   t0, 0
scan:                           # weights[i] += signal[i & 7]
    andi t1, t0, 7
    sll  t1, t1, 2
    add  t1, s1, t1
    lw   t2, 0(t1)
    sll  t3, t0, 2
    add  t3, s0, t3
    lw   t4, 0(t3)
    add  t4, t4, t2
    sw   t4, 0(t3)
    addi t0, t0, 1
    blt  t0, 64, scan
    addi s2, s2, 1
    blt  s2, 3, epoch
    lw   a0, 0(s0)
    li   v0, 2
    syscall                     # print one checksum word
    li   v0, 1
    syscall
"""
    return CleanProgram(
        name="art",
        description="array sweep with a hot data footprint",
        source=source,
    )


def _bzip2() -> CleanProgram:
    # Block sorting: stream a window from data into a heap work area,
    # then a byte-ish transform pass over the copy.
    source = """
.data
window: .word 11, 22, 33, 44, 55, 66, 77, 88
.text
main:
    li   a0, 4096
    li   v0, 6
    syscall                     # work area on the heap
    move s0, v0
    la   s1, window
    li   t0, 0
copy:
    andi t1, t0, 7
    sll  t1, t1, 2
    add  t1, s1, t1
    lw   t2, 0(t1)
    sll  t3, t0, 2
    add  t3, s0, t3
    sw   t2, 0(t3)
    addi t0, t0, 1
    blt  t0, 48, copy
    li   t0, 0
    li   t4, 0
transform:                      # fold the copy into a checksum
    sll  t3, t0, 2
    add  t3, s0, t3
    lw   t2, 0(t3)
    andi t2, t2, 0xFF
    add  t4, t4, t2
    addi t0, t0, 1
    blt  t0, 48, transform
    move a0, t4
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""
    return CleanProgram(
        name="bzip2",
        description="streaming window copy plus transform pass",
        source=source,
    )


def _crafty() -> CleanProgram:
    # Chess hash probing: scatter stores into a heap table, then probe
    # with a multiplicative hash.
    source = """
.text
main:
    li   a0, 2048
    li   v0, 6
    syscall
    move s0, v0                 # hash table
    li   t0, 1
fill:
    li   t1, 2654435761
    mul  t2, t0, t1
    srl  t2, t2, 23
    andi t2, t2, 0x1FC          # word-aligned slot offset
    add  t3, s0, t2
    sw   t0, 0(t3)
    addi t0, t0, 1
    blt  t0, 40, fill
    li   t0, 1
    li   s1, 0
probe:
    li   t1, 2654435761
    mul  t2, t0, t1
    srl  t2, t2, 23
    andi t2, t2, 0x1FC
    add  t3, s0, t2
    lw   t4, 0(t3)
    add  s1, s1, t4
    addi t0, t0, 2
    blt  t0, 40, probe
    move a0, s1
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""
    return CleanProgram(
        name="crafty",
        description="multiplicative hash fill and probe over the heap",
        source=source,
    )


def _gzip() -> CleanProgram:
    # LZ77 flavour: copy back-references within a data-segment window.
    source = """
.data
text_buf: .word 7, 3, 9, 3, 7, 1, 0, 4
out_buf:  .space 512
.text
main:
    la   s0, text_buf
    la   s1, out_buf
    li   t0, 0
emit:                           # out[i] = text[i & 7] ^ out-distance
    andi t1, t0, 7
    sll  t1, t1, 2
    add  t1, s0, t1
    lw   t2, 0(t1)
    xor  t2, t2, t0
    sll  t3, t0, 2
    add  t3, s1, t3
    sw   t2, 0(t3)
    addi t0, t0, 1
    blt  t0, 96, emit
    li   t0, 8
    li   s2, 0
backref:                        # sum out[i] ^ out[i - 8]
    sll  t3, t0, 2
    add  t3, s1, t3
    lw   t4, 0(t3)
    addi t5, t3, -32
    lw   t6, 0(t5)
    xor  t4, t4, t6
    add  s2, s2, t4
    addi t0, t0, 1
    blt  t0, 96, backref
    move a0, s2
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""
    return CleanProgram(
        name="gzip",
        description="window emit plus back-reference pass",
        source=source,
    )


def _mcf() -> CleanProgram:
    # Network simplex flavour: build a linked list on the heap and
    # chase it, the personality's pointer-heavy traffic.
    source = """
.text
main:
    li   a0, 1024
    li   v0, 6
    syscall
    move s0, v0                 # node arena: [next, value] pairs
    li   t0, 0
build:                          # node i -> node i+1, last -> null
    sll  t1, t0, 3
    add  t1, s0, t1
    addi t2, t0, 1
    sll  t3, t2, 3
    add  t3, s0, t3
    slti t4, t0, 19
    bnez t4, link
    li   t3, 0
link:
    sw   t3, 0(t1)
    sw   t0, 4(t1)
    addi t0, t0, 1
    blt  t0, 20, build
    move t5, s0
    li   s1, 0
chase:                          # follow next pointers, sum values
    beqz t5, done
    lw   t6, 4(t5)
    add  s1, s1, t6
    lw   t5, 0(t5)
    j    chase
done:
    move a0, s1
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""
    return CleanProgram(
        name="mcf",
        description="heap linked-list build and pointer chase",
        source=source,
    )


def _parser() -> CleanProgram:
    # Dictionary lookups: scan a sorted data table with early exit,
    # using the stack for a small saved frame.
    source = """
.data
dict: .word 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37
.text
main:
    addi sp, sp, -8
    li   s0, 0
    li   s1, 0
words:
    andi a0, s0, 31
    jal  lookup
    add  s1, s1, v0
    sw   s1, 0(sp)              # spill the running total
    addi s0, s0, 1
    blt  s0, 24, words
    lw   a0, 0(sp)
    addi sp, sp, 8
    li   v0, 2
    syscall
    li   v0, 1
    syscall
lookup:                         # linear probe of the dictionary
    la   t0, dict
    li   t1, 0
    li   v0, 0
seek:
    lw   t2, 0(t0)
    bge  t2, a0, found
    addi t0, t0, 4
    addi t1, t1, 1
    blt  t1, 12, seek
found:
    move v0, t1
    jr   ra
"""
    return CleanProgram(
        name="parser",
        description="dictionary probing through a helper routine",
        source=source,
    )


def _vpr() -> CleanProgram:
    # Place-and-route: geometry arrays with stride-2 net sweeps.
    source = """
.data
xcoord: .space 256
ycoord: .space 256
.text
main:
    la   s0, xcoord
    la   s1, ycoord
    li   t0, 0
place:                          # seed coordinates
    sll  t1, t0, 2
    add  t2, s0, t1
    sw   t0, 0(t2)
    add  t3, s1, t1
    sll  t4, t0, 1
    sw   t4, 0(t3)
    addi t0, t0, 1
    blt  t0, 64, place
    li   t0, 0
    li   s2, 0
route:                          # stride-2 wirelength accumulation
    sll  t1, t0, 2
    add  t2, s0, t1
    lw   t5, 0(t2)
    add  t3, s1, t1
    lw   t6, 0(t3)
    sub  t7, t6, t5
    add  s2, s2, t7
    addi t0, t0, 2
    blt  t0, 64, route
    move a0, s2
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""
    return CleanProgram(
        name="vpr",
        description="geometry seeding and stride-2 net sweep",
        source=source,
    )


CLEAN_SUITE: tuple[CleanProgram, ...] = (
    _art(),
    _bzip2(),
    _crafty(),
    _gzip(),
    _mcf(),
    _parser(),
    _vpr(),
)

CLEAN_BY_NAME: dict[str, CleanProgram] = {c.name: c for c in CLEAN_SUITE}
