"""Random well-defined BN32 programs for property-based testing.

The record→replay determinism property ("replaying the FLLs reproduces
the committed-instruction stream bit for bit") should hold for *any*
program, not just hand-written ones.  This generator emits random
programs that are guaranteed to terminate and never fault:

* all loads/stores are masked into a private data array,
* loop iteration counts are fixed and bounded,
* divides are avoided (the ALU pool is closed over defined behaviour),
* every program ends in an exit syscall.

Hypothesis drives this with a seed; the program shape (op mix, loop
nesting, array traffic) varies enough to exercise interval boundaries,
dictionary states and first-load bookkeeping.
"""

from __future__ import annotations

import random

from repro.arch.assembler import assemble
from repro.arch.program import Program

_ALU3 = ["add", "sub", "mul", "and", "or", "xor", "nor", "slt", "sltu"]
_ALUI = ["addi", "andi", "ori", "xori", "slti"]
_SHIFTS = ["sll", "srl", "sra"]
_TEMPS = [f"t{i}" for i in range(8)]

ARRAY_WORDS = 64


def _straight_ops(rng: random.Random, count: int, lines: list[str]) -> None:
    for _ in range(count):
        kind = rng.random()
        if kind < 0.35:
            op = rng.choice(_ALU3)
            rd, rs, rt = (rng.choice(_TEMPS) for _ in range(3))
            lines.append(f"    {op} {rd}, {rs}, {rt}")
        elif kind < 0.50:
            op = rng.choice(_ALUI)
            rd, rs = rng.choice(_TEMPS), rng.choice(_TEMPS)
            if op in ("andi", "ori", "xori"):
                imm = rng.randrange(0, 0x10000)
            else:
                imm = rng.randrange(-0x800, 0x800)
            lines.append(f"    {op} {rd}, {rs}, {imm}")
        elif kind < 0.60:
            op = rng.choice(_SHIFTS)
            rd, rs = rng.choice(_TEMPS), rng.choice(_TEMPS)
            lines.append(f"    {op} {rd}, {rs}, {rng.randrange(0, 32)}")
        elif kind < 0.80:
            # Masked load: addr = base + (reg & (ARRAY-1)) * 4
            rd, rs = rng.choice(_TEMPS), rng.choice(_TEMPS)
            lines.append(f"    andi at, {rs}, {ARRAY_WORDS - 1}")
            lines.append("    sll  at, at, 2")
            lines.append("    add  at, s7, at")
            lines.append(f"    lw   {rd}, 0(at)")
        else:
            # Masked store.
            rs, rt = rng.choice(_TEMPS), rng.choice(_TEMPS)
            lines.append(f"    andi at, {rs}, {ARRAY_WORDS - 1}")
            lines.append("    sll  at, at, 2")
            lines.append("    add  at, s7, at")
            lines.append(f"    sw   {rt}, 0(at)")


def random_source(seed: int, blocks: int | None = None) -> str:
    """Generate random BN32 source for *seed*."""
    rng = random.Random(seed)
    if blocks is None:
        blocks = rng.randrange(2, 8)
    lines = [".data", "array: .space %d" % (ARRAY_WORDS * 4)]
    # Seed the array with deterministic junk so first loads see variety.
    init_words = ", ".join(
        str(rng.randrange(0, 2**32)) for _ in range(8)
    )
    lines.append(f"inits: .word {init_words}")
    lines += [".text", "main:", "    la   s7, array"]
    for reg in _TEMPS:
        lines.append(f"    li   {reg}, {rng.randrange(0, 2**31)}")
    label = 0
    for _ in range(blocks):
        if rng.random() < 0.5:
            _straight_ops(rng, rng.randrange(2, 8), lines)
        else:
            counter = rng.choice(["s0", "s1", "s2", "s3"])
            iters = rng.randrange(1, 16)
            label += 1
            lines.append(f"    li   {counter}, {iters}")
            lines.append(f"L{label}:")
            _straight_ops(rng, rng.randrange(1, 5), lines)
            lines.append(f"    addi {counter}, {counter}, -1")
            lines.append(f"    bnez {counter}, L{label}")
        if rng.random() < 0.2:
            # A forward conditional skip over a couple of ops.
            label += 1
            a, b = rng.choice(_TEMPS), rng.choice(_TEMPS)
            lines.append(f"    bge  {a}, {b}, S{label}")
            _straight_ops(rng, rng.randrange(1, 3), lines)
            lines.append(f"S{label}:")
        if rng.random() < 0.15:
            lines.append(f"    move a0, {rng.choice(_TEMPS)}")
            lines.append("    li   v0, 2")
            lines.append("    syscall")
    lines += ["    li   v0, 1", "    syscall"]
    return "\n".join(lines)


def random_program(seed: int, blocks: int | None = None) -> Program:
    """Assemble a random program for *seed*."""
    return assemble(random_source(seed, blocks), name=f"rand-{seed}")
