"""The seven SPEC 2000 personalities used by the paper's Figures 3-6.

Each personality is a seeded synthetic generator calibrated to the
benchmark's qualitative behaviour: memory-operation density, reference
regions (working set structure) and load-value locality.  We cannot run
the real binaries offline, but the figures only depend on the statistics
of the load stream — first-load rate as a function of interval length,
and dictionary hit rate as a function of table size — which these
models reproduce (see DESIGN.md for the substitution argument).

Region/mixture intuition per benchmark:

* ``art``    — image/neural-net arrays swept in loops: small hot
  footprint, highly repetitive values (the paper's best compressor).
* ``bzip2``  — block-sorting compressor: streaming input window plus
  large work arrays, byte-ish values.
* ``crafty`` — chess search: huge hash tables with long cold tails,
  high-entropy packed positions (worst-case for the dictionary).
* ``gzip``   — LZ77 window streaming, skewed literal values.
* ``mcf``    — network simplex pointer chasing over a big graph: high
  first-load rate, many pointer/zero values.
* ``parser`` — dictionary lookups and linked lists: chasing with a
  moderate frequent-value pool.
* ``vpr``    — place-and-route: geometry arrays plus net lists, mixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.workloads.access import AccessModel, Region
from repro.workloads.values import ValueModel

DATA = 0x1000_0000
HEAP = 0x2000_0000
STACK = 0x7FF0_0000


@dataclass(frozen=True)
class SpecPersonality:
    """One synthetic SPEC-like workload."""

    name: str
    load_ratio: float        # loads per instruction
    store_ratio: float       # stores per instruction
    regions: tuple[Region, ...]
    values: ValueModel
    base_seed: int = 2005

    @property
    def mem_ratio(self) -> float:
        """Memory operations per instruction."""
        return self.load_ratio + self.store_ratio

    def events(
        self,
        instructions: int,
        seed: int | None = None,
        chunk: int = 1 << 16,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield (gaps, is_store, addrs, values) chunks.

        ``gaps[i]`` is the number of instructions event *i* accounts for
        (the memory operation itself plus preceding non-memory work);
        chunks keep coming until the cumulative gap sum covers
        *instructions*.
        """
        rng = np.random.default_rng(
            self.base_seed if seed is None else seed
        )
        access = AccessModel(list(self.regions))
        pool = self.values.pool(rng)  # fixed frequent-value set per run
        store_fraction = self.store_ratio / self.mem_ratio
        produced = 0
        while produced < instructions:
            gaps = rng.geometric(self.mem_ratio, size=chunk).astype(np.int64)
            is_store = rng.random(chunk) < store_fraction
            addrs = access.sample(rng, chunk)
            values = self.values.sample(rng, chunk, pool=pool)
            produced += int(gaps.sum())
            yield gaps, is_store, addrs, values


def _personalities() -> dict[str, SpecPersonality]:
    workloads = [
        SpecPersonality(
            name="art",
            load_ratio=0.30, store_ratio=0.08,
            regions=(
                Region("zipf", DATA, 6_000, 0.72),
                Region("stream", HEAP, 4_000, 0.18, stride=1),
                Region("zipf", STACK, 512, 0.10),
            ),
            values=ValueModel(frequent_weight=0.73, small_int_weight=0.10,
                              pointer_weight=0.01, pool_size=28),
        ),
        SpecPersonality(
            name="bzip2",
            load_ratio=0.26, store_ratio=0.11,
            regions=(
                Region("stream", HEAP, 12_000, 0.45, stride=1),
                Region("zipf", HEAP + 0x0100_0000, 8_000, 0.40),
                Region("zipf", STACK, 1_024, 0.15),
            ),
            values=ValueModel(frequent_weight=0.33, small_int_weight=0.24,
                              pointer_weight=0.04, pool_size=36),
        ),
        SpecPersonality(
            name="crafty",
            load_ratio=0.28, store_ratio=0.09,
            regions=(
                Region("chase", HEAP, 20_000, 0.40),
                Region("zipf", DATA, 12_000, 0.45),
                Region("zipf", STACK, 2_048, 0.15),
            ),
            values=ValueModel(frequent_weight=0.22, small_int_weight=0.12,
                              pointer_weight=0.08, pool_size=48),
        ),
        SpecPersonality(
            name="gzip",
            load_ratio=0.24, store_ratio=0.10,
            regions=(
                Region("stream", HEAP, 8_000, 0.50, stride=1),
                Region("zipf", DATA, 6_000, 0.35),
                Region("zipf", STACK, 512, 0.15),
            ),
            values=ValueModel(frequent_weight=0.51, small_int_weight=0.22,
                              pointer_weight=0.01, pool_size=28),
        ),
        SpecPersonality(
            name="mcf",
            load_ratio=0.32, store_ratio=0.08,
            regions=(
                Region("chase", HEAP, 40_000, 0.55),
                Region("zipf", HEAP + 0x0200_0000, 12_000, 0.35),
                Region("zipf", STACK, 512, 0.10),
            ),
            values=ValueModel(frequent_weight=0.52, small_int_weight=0.06,
                              pointer_weight=0.12, pool_size=24),
        ),
        SpecPersonality(
            name="parser",
            load_ratio=0.27, store_ratio=0.10,
            regions=(
                Region("chase", HEAP, 16_000, 0.35),
                Region("zipf", DATA, 10_000, 0.45),
                Region("zipf", STACK, 1_024, 0.20),
            ),
            values=ValueModel(frequent_weight=0.40, small_int_weight=0.16,
                              pointer_weight=0.07, pool_size=32),
        ),
        SpecPersonality(
            name="vpr",
            load_ratio=0.29, store_ratio=0.09,
            regions=(
                Region("zipf", HEAP, 28_000, 0.50),
                Region("stream", HEAP + 0x0100_0000, 10_000, 0.25, stride=2),
                Region("zipf", STACK, 1_024, 0.25),
            ),
            values=ValueModel(frequent_weight=0.32, small_int_weight=0.16,
                              pointer_weight=0.07, pool_size=40),
        ),
    ]
    return {w.name: w for w in workloads}


SPEC_WORKLOADS: dict[str, SpecPersonality] = _personalities()
