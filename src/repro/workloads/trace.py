"""Trace-driven recording engine for the figure sweeps.

Drives the *real* BugNet recorder — the same
:class:`~repro.cache.hierarchy.FirstLoadHierarchy`,
:class:`~repro.tracing.dictionary.DictionaryCompressor` and
:class:`~repro.tracing.fll.FLLWriter` the full-system machine uses —
from a synthetic event stream, so the log sizes it measures are the
sizes the hardware would produce, at a rate fast enough for
multi-million-instruction sweeps (Figures 3-6).

The engine can carry *satellite dictionaries* of other sizes in the same
pass, which is how Figure 5 (hit rate vs. size) and Figure 6
(compression ratio vs. size) are produced without rerunning the trace
per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.hierarchy import FirstLoadHierarchy
from repro.common.config import BugNetConfig, CacheConfig, DictionaryConfig, MachineConfig
from repro.tracing.backing import LogStore
from repro.tracing.dictionary import DictionaryCompressor
from repro.tracing.recorder import BugNetRecorder

_ZERO_REGS = tuple([0] * 32)


@dataclass
class DictStats:
    """Satellite-dictionary accounting for one table size."""

    size: int
    hits: int = 0
    lookups: int = 0
    compressed_bits: int = 0  # value-field bits this size would have written

    @property
    def hit_rate(self) -> float:
        """Figure 5's metric."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class TraceStats:
    """Everything one engine run measured."""

    name: str
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    logged_loads: int = 0
    intervals: int = 0
    fll_bytes: int = 0
    fll_payload_bits: int = 0
    fll_raw_payload_bits: int = 0
    fll_shared_bits: int = 0  # actual LC-Type/L-Count/LV-Type bits (all sizes)
    memory_fills: int = 0
    writebacks: int = 0
    dict_stats: dict[int, DictStats] = field(default_factory=dict)

    @property
    def first_load_rate(self) -> float:
        """Fraction of loads that were logged."""
        return self.logged_loads / self.loads if self.loads else 0.0

    @property
    def compression_ratio(self) -> float:
        """Raw/compressed payload — Figure 6's metric for the main table."""
        if not self.fll_payload_bits:
            return 1.0
        return self.fll_raw_payload_bits / self.fll_payload_bits

    def compression_ratio_for(self, size: int, config: BugNetConfig) -> float:
        """Figure 6's metric for a satellite dictionary size.

        Rebuilds the total record size from the shared non-value bits
        (identical across sizes) plus that size's value-field bits.
        """
        stats = self.dict_stats[size]
        compressed = self.fll_shared_bits + stats.compressed_bits
        if not compressed:
            return 1.0
        return self.fll_raw_payload_bits / compressed


class TraceEngine:
    """Runs synthetic event chunks through a real recorder.

    Two equivalent drive modes exist: the per-event reference loop and a
    batched fast path that segments each chunk at checkpoint-interval
    boundaries and feeds whole segments to
    :meth:`~repro.cache.hierarchy.FirstLoadHierarchy.access_many` and
    :meth:`~repro.tracing.recorder.BugNetRecorder.note_loads`.  Both
    produce bit-identical FLL payloads (asserted by the differential
    tests); satellite dictionaries force the per-event loop because they
    sample every load individually.
    """

    def __init__(
        self,
        name: str,
        bugnet: BugNetConfig,
        l1: CacheConfig | None = None,
        l2: CacheConfig | None = None,
        satellite_sizes: tuple[int, ...] = (),
        fast_path: bool = True,
    ) -> None:
        machine_defaults = MachineConfig()
        self.name = name
        self.bugnet = bugnet
        self.fast_path = fast_path
        self.hierarchy = FirstLoadHierarchy(
            l1 or machine_defaults.l1, l2 or machine_defaults.l2
        )
        self.store = LogStore(bugnet)
        self.recorder = BugNetRecorder(bugnet, self.hierarchy, self.store)
        self.satellites = [
            (DictionaryCompressor(DictionaryConfig(entries=size)), DictStats(size))
            for size in satellite_sizes
        ]
        self._sat_index_bits = {
            size: DictionaryConfig(entries=size).index_bits
            for size in satellite_sizes
        }

    def _begin_interval(self) -> None:
        """Open an interval: satellites reset with the main dictionary."""
        self.recorder.begin_interval(0, _ZERO_REGS)
        for dictionary, _ in self.satellites:
            dictionary.reset()

    def run(self, chunks, max_instructions: int) -> TraceStats:
        """Consume event chunks until *max_instructions* are accounted."""
        if self.fast_path and not self.satellites:
            return self._run_batched(chunks, max_instructions)
        return self._run_events(chunks, max_instructions)

    def _run_batched(self, chunks, max_instructions: int) -> TraceStats:
        """Batched drive mode: one recorder call per interval segment."""
        recorder = self.recorder
        hierarchy = self.hierarchy
        interval = self.bugnet.checkpoint_interval
        stats = TraceStats(name=self.name)
        budget = max_instructions

        self._begin_interval()
        for gaps, is_store, addrs, values in chunks:
            if not len(gaps):
                continue
            cum = np.minimum(np.cumsum(gaps), budget)
            if cum[-1] >= budget:
                count = int(np.searchsorted(cum, budget, side="left")) + 1
            else:
                count = len(cum)
            addr_list = addrs[:count].tolist()
            store_list = is_store[:count].tolist()
            value_list = values[:count].tolist()
            pos = 0
            base = 0
            while pos < count:
                if not recorder.active:
                    self._begin_interval()
                # Largest run of events whose commits stay inside the
                # current interval (its last commit may close it exactly).
                limit = base + interval - recorder.ic
                end = int(np.searchsorted(cum[pos:count], limit, side="right")) + pos
                if end == pos:
                    # Event `pos` straddles the interval boundary inside
                    # its preamble: fall back to per-event accounting.
                    self._one_event(
                        stats, int(cum[pos]) - base,
                        store_list[pos], addr_list[pos], value_list[pos],
                    )
                    base = int(cum[pos])
                    pos += 1
                    continue
                seg_stores = store_list[pos:end]
                firsts = hierarchy.access_many(addr_list[pos:end], seg_stores)
                pairs = [
                    (value, first)
                    for value, flag, first in zip(
                        value_list[pos:end], seg_stores, firsts
                    )
                    if not flag
                ]
                writer = recorder._fll
                payload_before = writer.payload_bits
                value_before = writer.value_bits
                stats.logged_loads += recorder.note_loads(pairs)
                stats.fll_shared_bits += (
                    (writer.payload_bits - payload_before)
                    - (writer.value_bits - value_before)
                )
                stats.loads += len(pairs)
                stats.stores += (end - pos) - len(pairs)
                segment_end = int(cum[end - 1])
                recorder.note_commits(segment_end - base)
                base = segment_end
                pos = end
            budget -= base
            if budget <= 0:
                break
        if recorder.active:
            recorder.end_interval("shutdown")
        return self._finalize(stats, max_instructions - max(budget, 0))

    def _one_event(self, stats, gap, store_flag, addr, value) -> None:
        """Reference per-event accounting (also the straddle fallback)."""
        recorder = self.recorder
        hierarchy = self.hierarchy
        preamble = gap - 1
        while preamble:
            if not recorder.active:
                self._begin_interval()
            preamble = recorder.note_commits(preamble)
        if not recorder.active:
            self._begin_interval()
        if store_flag:
            hierarchy.access(addr, is_store=True)
            stats.stores += 1
        else:
            first = hierarchy.access(addr, is_store=False)
            writer = recorder._fll
            payload_before = writer.payload_bits
            value_before = writer.value_bits
            if first:
                stats.logged_loads += 1
            if self.satellites:
                self._satellite_load(value, first)
            recorder.note_load(value, first)
            stats.fll_shared_bits += (
                (writer.payload_bits - payload_before)
                - (writer.value_bits - value_before)
            )
            stats.loads += 1
        if gap:
            leftover = recorder.note_commits(1)
            if leftover:  # pragma: no cover - note_commits(1) never splits
                self._begin_interval()
                recorder.note_commits(leftover)

    def _run_events(self, chunks, max_instructions: int) -> TraceStats:
        """Per-event reference drive mode (satellites, differential tests)."""
        stats = TraceStats(name=self.name)
        budget = max_instructions

        self._begin_interval()
        done = False
        for gaps, is_store, addrs, values in chunks:
            for gap, store_flag, addr, value in zip(
                gaps.tolist(), is_store.tolist(), addrs.tolist(), values.tolist()
            ):
                gap = min(gap, budget)
                self._one_event(stats, gap, store_flag, addr, value)
                budget -= gap
                if budget <= 0:
                    done = True
                    break
            if done:
                break
        if self.recorder.active:
            self.recorder.end_interval("shutdown")
        return self._finalize(stats, max_instructions - max(budget, 0))

    def _satellite_load(self, value: int, first: bool) -> None:
        for dictionary, stat in self.satellites:
            stat.lookups += 1
            index = dictionary.lookup(value)
            if index is not None:
                stat.hits += 1
            if first:
                stat.compressed_bits += (
                    self._sat_index_bits[stat.size] if index is not None else 32
                )
            dictionary.update(value)

    def _finalize(self, stats: TraceStats, instructions: int) -> TraceStats:
        stats.instructions = instructions
        checkpoints = self.store.checkpoints(0)
        stats.intervals = len(checkpoints)
        stats.fll_bytes = self.store.fll_bytes(0)
        stats.fll_payload_bits = sum(cp.fll.payload_bits for cp in checkpoints)
        stats.fll_raw_payload_bits = sum(
            cp.fll.raw_payload_bits for cp in checkpoints
        )
        stats.memory_fills = self.hierarchy.memory_fills
        stats.writebacks = self.hierarchy.writebacks
        stats.dict_stats = {stat.size: stat for _, stat in self.satellites}
        return stats


def record_personality(
    personality,
    instructions: int,
    checkpoint_interval: int,
    seed: int | None = None,
    satellite_sizes: tuple[int, ...] = (),
    l1: CacheConfig | None = None,
    l2: CacheConfig | None = None,
) -> TraceStats:
    """One-call driver: record a personality for a given window/interval."""
    bugnet = BugNetConfig(checkpoint_interval=checkpoint_interval)
    engine = TraceEngine(
        personality.name, bugnet, l1=l1, l2=l2, satellite_sizes=satellite_sizes
    )
    chunks = personality.events(instructions, seed=seed)
    return engine.run(chunks, instructions)
