"""Load-value models with frequent-value locality.

Yang & Gupta (cited by the paper as [25]) observed that over 50 % of
load values are covered by a small set of frequently occurring values —
that is the property the dictionary compressor exploits, and the one
these models reproduce.  Each model draws values from a mixture of:

* a small *frequent pool* sampled with a log-uniform (Zipf-like) rank
  distribution — what lands in the dictionary,
* small integers (loop counts, flags, character data),
* pointer-shaped values (addresses inside the workload's heap), and
* uniformly random 32-bit words (incompressible payloads).

The mixture weights are the per-benchmark tuning knob for Figure 5's
hit-rate spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_WORD = np.uint64  # intermediate math; results masked to 32 bits


@dataclass(frozen=True)
class ValueModel:
    """A mixture model over 32-bit load values."""

    frequent_weight: float      # mass on the frequent pool
    small_int_weight: float     # mass on 0..small_int_range
    pointer_weight: float       # mass on heap-pointer-shaped values
    pool_size: int = 48
    small_int_range: int = 256
    pointer_base: int = 0x2000_0000
    pointer_span: int = 1 << 20

    def __post_init__(self) -> None:
        total = self.frequent_weight + self.small_int_weight + self.pointer_weight
        if total > 1.0 + 1e-9:
            raise ValueError("mixture weights exceed 1")

    def pool(self, rng: np.random.Generator) -> np.ndarray:
        """The frequent-value pool for one run (seeded)."""
        values = rng.integers(0, 1 << 32, size=self.pool_size, dtype=np.uint64)
        # Make the very top of the pool the classic frequent values:
        # 0, 1, -1 dominate real load-value profiles.
        values[0] = 0
        if self.pool_size > 1:
            values[1] = 1
        if self.pool_size > 2:
            values[2] = 0xFFFFFFFF
        return values

    def sample(self, rng: np.random.Generator, count: int,
               pool: np.ndarray | None = None) -> np.ndarray:
        """Draw *count* values as a uint32 numpy array.

        Pass a *pool* (from :meth:`pool`) when sampling a stream in
        chunks: the frequent-value set is a property of the program, so
        it must stay fixed across batches.
        """
        if pool is None:
            pool = self.pool(rng)
        choice = rng.random(count)
        out = np.empty(count, dtype=np.uint64)

        frequent_cut = self.frequent_weight
        small_cut = frequent_cut + self.small_int_weight
        pointer_cut = small_cut + self.pointer_weight

        frequent_mask = choice < frequent_cut
        number = int(frequent_mask.sum())
        if number:
            # Log-uniform ranks concentrate on the head of the pool.
            ranks = np.power(
                float(self.pool_size), rng.random(number)
            ).astype(np.int64) - 1
            out[frequent_mask] = pool[np.clip(ranks, 0, self.pool_size - 1)]

        small_mask = (choice >= frequent_cut) & (choice < small_cut)
        number = int(small_mask.sum())
        if number:
            # Small integers are loop bounds, flags and counters — heavily
            # skewed toward tiny values, so sample them log-uniformly too.
            ranks = np.power(
                float(self.small_int_range), rng.random(number)
            ).astype(np.int64) - 1
            out[small_mask] = np.clip(ranks, 0, self.small_int_range - 1).astype(
                np.uint64
            )

        pointer_mask = (choice >= small_cut) & (choice < pointer_cut)
        number = int(pointer_mask.sum())
        if number:
            offsets = rng.integers(
                0, self.pointer_span // 4, size=number, dtype=np.uint64
            )
            out[pointer_mask] = self.pointer_base + 4 * offsets

        random_mask = choice >= pointer_cut
        number = int(random_mask.sum())
        if number:
            out[random_mask] = rng.integers(0, 1 << 32, size=number, dtype=np.uint64)
        return (out & 0xFFFFFFFF).astype(np.uint32)
