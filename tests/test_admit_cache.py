"""Dedup-before-validate admission: the validated-signature cache.

The contracts pinned here keep the admission shortcut honest:

- **Equivalence**: with the cache enabled, every commit (store entry,
  upload index, rollups, bucket, signature, race evidence) is
  byte-identical to what full validation would have produced — over
  the whole multithreaded Table-1 suite, racy bugs included.
- **Trust-but-verify determinism**: the reverify sample is a pure
  function of ``(seed, fingerprint, upload_id)``, so restarts and
  cluster peers draw the same sample and an upload cannot dodge
  re-validation by retrying.
- **Quarantine**: a poisoned cache entry that survives the probe's
  integrity cross-check (its lie is in the *tail*, not the fields the
  blob itself witnesses) is caught by the sampled re-validation; the
  bucket quarantines, its entries evict, and re-admission is refused.
- **Persistence**: flock-guarded read-merge-write, so concurrent
  writers union rather than clobber, and restarts resume warm.
"""

import json

import pytest

from repro.common.config import BugNetConfig
from repro.fleet.admitcache import AdmitCache, CachedOutcome, blob_fingerprint
from repro.fleet.ingest import IngestPipeline
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets
from repro.fleet.validate import ValidatedReport, validate_report
from repro.forensics.autopsy import bug_suite_resolver
from repro.obs import REGISTRY
from repro.tracing.serialize import dump_crash_report, load_report_header
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

MT_SUITE = ("gaim-0.82.1", "napster-1.5.2", "python-2.1.1-1",
            "python-2.1.1-2", "w3m-0.3.2.2")


@pytest.fixture(scope="module")
def resolver():
    return bug_suite_resolver()


@pytest.fixture(scope="module")
def mt_blobs(resolver):
    """One recorded shipment per multithreaded Table-1 bug."""
    config = BugNetConfig(checkpoint_interval=20_000)
    blobs = {}
    for name in MT_SUITE:
        run = run_bug(BUGS_BY_NAME[name], bugnet=config, record=True,
                      interleave_seed=9)
        assert run.crashed, name
        blobs[name] = dump_crash_report(run.result.crash, config)
    return blobs


@pytest.fixture(scope="module")
def gaim_blob(mt_blobs):
    return mt_blobs["gaim-0.82.1"]


def _counter(name, labels=()):
    return REGISTRY.sample_value(name, labels) or 0


def _entry_key(entry):
    return (entry.digest, entry.seq, entry.observed_at, entry.byte_size,
            entry.replay_window, entry.fault_kind, entry.program_name,
            entry.shard, entry.filename, entry.upload_id, entry.race_pcs,
            entry.route_key)


class TestProbeAndRecord:
    def test_cold_probe_misses_then_hits_after_record(
            self, gaim_blob, resolver, tmp_path):
        cache = AdmitCache(tmp_path / "cache.json")
        assert cache.probe(gaim_blob) is None
        validated = validate_report("g", gaim_blob, None, resolver)
        assert isinstance(validated, ValidatedReport)
        cache.record(blob_fingerprint(gaim_blob), validated)
        entry = cache.probe(gaim_blob)
        assert entry is not None
        assert entry.digest == validated.signature.digest
        assert entry.race_pcs == validated.signature.race_pcs
        assert entry.route_key == validated.route_key

    def test_hit_materializes_identical_validated_report(
            self, gaim_blob, resolver, tmp_path):
        cache = AdmitCache(tmp_path / "cache.json")
        validated = validate_report("g", gaim_blob, None, resolver)
        cache.record(blob_fingerprint(gaim_blob), validated)
        entry = cache.probe(gaim_blob)
        materialized = entry.validated("g", gaim_blob, None)
        assert materialized.signature == validated.signature
        assert materialized.instructions == validated.instructions
        assert materialized.route_key == validated.route_key
        assert materialized.fault_kind == validated.fault_kind
        assert materialized.program_name == validated.program_name

    def test_flipped_bit_is_a_miss_not_a_hit(self, gaim_blob, resolver,
                                             tmp_path):
        """The fingerprint covers the whole blob: a corrupt variant of
        a cached report takes the full validation path (and dies
        there), it can never ride the cache."""
        cache = AdmitCache(tmp_path / "cache.json")
        validated = validate_report("g", gaim_blob, None, resolver)
        cache.record(blob_fingerprint(gaim_blob), validated)
        corrupt = bytearray(gaim_blob)
        corrupt[len(corrupt) // 2] ^= 0xFF
        assert cache.probe(bytes(corrupt)) is None

    def test_integrity_drop_when_entry_contradicts_blob(
            self, gaim_blob, resolver, tmp_path):
        """An entry whose claims disagree with the blob's own header is
        dropped and counted, never trusted."""
        cache = AdmitCache(tmp_path / "cache.json")
        validated = validate_report("g", gaim_blob, None, resolver)
        entry = CachedOutcome.from_validated(
            blob_fingerprint(gaim_blob), validated)
        lying = CachedOutcome(
            fingerprint=entry.fingerprint,
            program_name="not-the-program",
            fault_kind=entry.fault_kind,
            fault_pc=entry.fault_pc,
            tail_pcs=entry.tail_pcs,
            race_pcs=entry.race_pcs,
            instructions=entry.instructions,
            route_key=entry.route_key,
        )
        cache.seed_entry(lying)
        before = _counter("bugnet_admit_cache_total", ("integrity-drop",))
        assert cache.probe(gaim_blob) is None
        after = _counter("bugnet_admit_cache_total", ("integrity-drop",))
        assert after == before + 1
        assert len(cache) == 0  # dropped, not retained

    def test_lru_capacity_bound(self, mt_blobs, resolver, tmp_path):
        cache = AdmitCache(tmp_path / "cache.json", capacity=2)
        for name in MT_SUITE[:3]:
            validated = validate_report(name, mt_blobs[name], None, resolver)
            assert isinstance(validated, ValidatedReport), name
            cache.record(blob_fingerprint(mt_blobs[name]), validated)
        assert len(cache) == 2
        # The oldest (first-recorded) entry evicted.
        assert cache.probe(mt_blobs[MT_SUITE[0]]) is None
        assert cache.probe(mt_blobs[MT_SUITE[2]]) is not None


class TestHeaderOnlyDecode:
    def test_header_matches_full_decode(self, mt_blobs):
        from repro.tracing.serialize import load_crash_report

        for name, blob in mt_blobs.items():
            report, _config = load_crash_report(blob)
            header = load_report_header(blob)
            assert header.program_name == report.program_name, name
            assert header.fault_kind == report.fault_kind
            assert header.fault_pc == report.fault_pc
            assert header.fault_message == report.fault_message
            assert header.fault_source_line == report.fault_source_line
            assert header.pid == report.pid
            assert header.faulting_tid == report.faulting_tid

    def test_header_decode_works_on_v1_format(self, resolver):
        config = BugNetConfig(checkpoint_interval=2_000)
        run = run_bug(BUGS_BY_NAME["python-2.1.1-2"], bugnet=config,
                      record=True)
        blob = dump_crash_report(run.result.crash, config, version=1)
        header = load_report_header(blob)
        assert header.program_name == run.result.crash.program_name
        assert header.fault_pc == run.result.crash.fault_pc

    def test_header_decode_rejects_garbage(self, gaim_blob):
        from repro.fleet.validate import DECODE_ERRORS

        with pytest.raises(DECODE_ERRORS):
            load_report_header(b"not a report")
        with pytest.raises(DECODE_ERRORS):
            load_report_header(gaim_blob[:40])  # truncated mid-body


class TestEquivalence:
    """Cache-enabled ingestion commits byte-identically to full
    validation — entry for entry, rollup for rollup — over the whole
    multithreaded suite with every blob uploaded twice."""

    def _traffic(self, mt_blobs):
        items = []
        for index, name in enumerate(MT_SUITE):
            items.append((f"orig:{name}", mt_blobs[name], index))
        for index, name in enumerate(MT_SUITE):
            items.append((f"dup:{name}", mt_blobs[name],
                          len(MT_SUITE) + index))
        return items

    def test_enabled_vs_disabled_identical_store_effects(
            self, mt_blobs, resolver, tmp_path):
        items = self._traffic(mt_blobs)

        plain_store = ReportStore(tmp_path / "plain", num_shards=4)
        plain = IngestPipeline(plain_store, resolver)
        plain_results = plain.ingest_many(items)

        cached_store = ReportStore(tmp_path / "cached", num_shards=4)
        cached = IngestPipeline(
            cached_store, resolver,
            admit_cache=AdmitCache(tmp_path / "cache.json",
                                   reverify_fraction=0.0),
        )
        cached_results = cached.ingest_many(items)

        assert cached.cache_hits == len(MT_SUITE)  # every dup rode the cache
        for full, shortcut in zip(plain_results, cached_results):
            assert full.accepted and shortcut.accepted
            assert full.digest == shortcut.digest
            assert full.signature == shortcut.signature
            assert full.signature.race_pcs == shortcut.signature.race_pcs
            assert (full.instructions_replayed
                    == shortcut.instructions_replayed)
        # Store effects: identical entries (sequence numbers, shard
        # placement, filenames, every metadata field) and rollups.
        assert ([_entry_key(e) for e in plain_store.entries()]
                == [_entry_key(e) for e in cached_store.entries()])
        assert plain_store.rollups() == cached_store.rollups()
        # Triage sees the same world.
        plain_buckets = build_buckets(plain_store)
        cached_buckets = build_buckets(cached_store)
        assert ([b.to_dict() for b in plain_buckets]
                == [b.to_dict() for b in cached_buckets])

    def test_warm_restart_equivalence(self, mt_blobs, resolver, tmp_path):
        """Second batch in a *new* pipeline (cache warm from disk):
        still identical to full validation."""
        items = self._traffic(mt_blobs)
        cache_path = tmp_path / "cache.json"

        warm_store = ReportStore(tmp_path / "warm", num_shards=4)
        first = IngestPipeline(
            warm_store, resolver,
            admit_cache=AdmitCache(cache_path, reverify_fraction=0.0))
        first.ingest_many(items)

        # Restarted consumer, same cache file: everything now hits.
        second = IngestPipeline(
            warm_store, resolver,
            admit_cache=AdmitCache(cache_path, reverify_fraction=0.0))
        again = second.ingest_many(items)
        assert all(result.accepted for result in again)
        assert second.cache_hits == len(items)

        plain_store = ReportStore(tmp_path / "plain", num_shards=4)
        plain = IngestPipeline(plain_store, resolver)
        plain.ingest_many(items)
        plain.ingest_many(items)
        assert ([_entry_key(e) for e in warm_store.entries()]
                == [_entry_key(e) for e in plain_store.entries()])
        assert warm_store.rollups() == plain_store.rollups()


class TestReverifyDeterminism:
    def test_sample_identical_across_restarts_and_nodes(self, tmp_path):
        """(seed, fingerprint, upload_id) fully determines membership:
        a restarted cache (same path) and a cluster peer (different
        path, same seed) draw the identical sample."""
        draws = [(blob_fingerprint(f"blob-{i}".encode()), f"upload-{i}")
                 for i in range(200)]
        first = AdmitCache(tmp_path / "a.json", seed=7,
                           reverify_fraction=0.1)
        restarted = AdmitCache(tmp_path / "a.json", seed=7,
                               reverify_fraction=0.1)
        peer = AdmitCache(tmp_path / "b" / "peer.json", seed=7,
                          reverify_fraction=0.1)
        sample = [first.should_reverify(fp, up) for fp, up in draws]
        assert sample == [restarted.should_reverify(fp, up)
                          for fp, up in draws]
        assert sample == [peer.should_reverify(fp, up) for fp, up in draws]
        # The fraction is honored in expectation (loose bounds: 200
        # draws at 0.1 — the point is "nonzero and nowhere near all").
        assert 2 <= sum(sample) <= 60

    def test_seed_changes_the_sample(self, tmp_path):
        draws = [(blob_fingerprint(f"blob-{i}".encode()), f"upload-{i}")
                 for i in range(200)]
        a = AdmitCache(tmp_path / "a.json", seed=0, reverify_fraction=0.1)
        b = AdmitCache(tmp_path / "b.json", seed=1, reverify_fraction=0.1)
        assert ([a.should_reverify(fp, up) for fp, up in draws]
                != [b.should_reverify(fp, up) for fp, up in draws])

    def test_fraction_extremes(self, tmp_path):
        cache = AdmitCache(tmp_path / "c.json", reverify_fraction=0.0)
        assert not cache.should_reverify("f" * 64, "u")
        always = AdmitCache(tmp_path / "d.json", reverify_fraction=1.0)
        assert always.should_reverify("f" * 64, "u")


class TestQuarantine:
    def _poison_evidence(self, entry):
        """A poisoned entry the probe CANNOT catch: program, fault kind,
        fault PC and route digest all still match the blob's own header
        — the lie is in the replay-derived evidence (the race PCs; the
        tail for a race-free bucket), which only a full replay
        witnesses.  Its digest therefore differs: hits would commit
        into the wrong bucket."""
        return CachedOutcome(
            fingerprint=entry.fingerprint,
            program_name=entry.program_name,
            fault_kind=entry.fault_kind,
            fault_pc=entry.fault_pc,
            tail_pcs=(entry.tail_pcs if entry.race_pcs
                      else tuple(pc + 1 for pc in entry.tail_pcs)),
            race_pcs=tuple(pc + 1 for pc in entry.race_pcs),
            instructions=entry.instructions,
            route_key=entry.route_key,
        )

    def test_poisoned_entry_survives_probe_but_reverify_quarantines(
            self, gaim_blob, resolver, tmp_path):
        cache = AdmitCache(tmp_path / "cache.json", reverify_fraction=1.0)
        validated = validate_report("g", gaim_blob, None, resolver)
        honest = CachedOutcome.from_validated(
            blob_fingerprint(gaim_blob), validated)
        poisoned = self._poison_evidence(honest)
        assert poisoned.digest != honest.digest
        cache.seed_entry(poisoned)

        # The probe's integrity cross-check passes — by design, it can
        # only check what the blob itself claims.
        assert cache.probe(gaim_blob) is not None

        # The sampled re-validation catches the lie.
        before = _counter("bugnet_admit_quarantine_total")
        mismatch_before = _counter("bugnet_admit_reverify_total",
                                   ("mismatch",))
        assert not cache.reverify_outcome(poisoned, validated)
        assert _counter("bugnet_admit_quarantine_total") == before + 1
        assert _counter("bugnet_admit_reverify_total",
                        ("mismatch",)) == mismatch_before + 1

        # The bucket is now cold: probe refuses, record refuses.
        assert cache.probe(gaim_blob) is None
        assert cache.record(blob_fingerprint(gaim_blob),
                            ValidatedReport(
                                label="again", blob=gaim_blob,
                                observed_at=None,
                                signature=poisoned.signature,
                                fault_kind=poisoned.fault_kind,
                                program_name=poisoned.program_name,
                                instructions=poisoned.instructions,
                                route_key=poisoned.route_key)) is None
        assert poisoned.digest in cache.quarantined

    def test_quarantine_persists_across_restart(self, gaim_blob, resolver,
                                                tmp_path):
        path = tmp_path / "cache.json"
        cache = AdmitCache(path, reverify_fraction=1.0)
        validated = validate_report("g", gaim_blob, None, resolver)
        honest = CachedOutcome.from_validated(
            blob_fingerprint(gaim_blob), validated)
        poisoned = self._poison_evidence(honest)
        cache.seed_entry(poisoned)
        cache.reverify_outcome(poisoned, validated)

        reborn = AdmitCache(path, reverify_fraction=1.0)
        assert poisoned.digest in reborn.quarantined
        assert reborn.probe(gaim_blob) is None
        assert reborn.record(blob_fingerprint(gaim_blob), ValidatedReport(
            label="again", blob=gaim_blob, observed_at=None,
            signature=poisoned.signature, fault_kind=poisoned.fault_kind,
            program_name=poisoned.program_name,
            instructions=poisoned.instructions,
            route_key=poisoned.route_key)) is None

    def test_pipeline_reverify_catches_poison_end_to_end(
            self, gaim_blob, resolver, tmp_path):
        """The full drill the CI smoke job runs: seed the cache
        honestly, poison the persisted file, re-upload with the sample
        forced on — the poisoned bucket quarantines and the upload
        still commits with the *correct* (re-validated) signature."""
        cache_path = tmp_path / "cache.json"
        store = ReportStore(tmp_path / "store", num_shards=2)
        seeder = IngestPipeline(
            store, resolver,
            admit_cache=AdmitCache(cache_path, reverify_fraction=0.0))
        first = seeder.ingest_many([("orig", gaim_blob, 0)])
        assert first[0].accepted
        true_digest = first[0].digest

        # Poison the persisted entry's tail out-of-band.
        data = json.loads(cache_path.read_text())
        assert len(data["entries"]) == 1
        data["entries"][0]["race_pcs"] = [
            pc + 1 for pc in data["entries"][0]["race_pcs"]]
        cache_path.write_text(json.dumps(data))

        pipeline = IngestPipeline(
            store, resolver,
            admit_cache=AdmitCache(cache_path, reverify_fraction=1.0))
        before = _counter("bugnet_admit_quarantine_total")
        results = pipeline.ingest_many([("dup", gaim_blob, 1)])
        assert results[0].accepted
        assert results[0].digest == true_digest  # full replay won
        assert pipeline.reverified == 1
        assert _counter("bugnet_admit_quarantine_total") == before + 1
        assert pipeline.admit_cache.quarantined  # bucket banned


class TestPersistence:
    def test_concurrent_writers_union_not_clobber(self, gaim_blob,
                                                  mt_blobs, resolver,
                                                  tmp_path):
        path = tmp_path / "cache.json"
        a = AdmitCache(path)
        b = AdmitCache(path)
        validated_a = validate_report("a", gaim_blob, None, resolver)
        blob_b = mt_blobs["python-2.1.1-2"]
        validated_b = validate_report("b", blob_b, None, resolver)
        a.record(blob_fingerprint(gaim_blob), validated_a)
        b.record(blob_fingerprint(blob_b), validated_b)
        a.flush()
        b.flush()  # read-merge-write: must keep a's entry
        merged = AdmitCache(path)
        assert merged.probe(gaim_blob) is not None
        assert merged.probe(blob_b) is not None

    def test_mtime_pickup_of_foreign_writes(self, gaim_blob, resolver,
                                            tmp_path):
        import os

        path = tmp_path / "cache.json"
        reader = AdmitCache(path)
        assert reader.probe(gaim_blob) is None
        writer = AdmitCache(path)
        validated = validate_report("w", gaim_blob, None, resolver)
        writer.record(blob_fingerprint(gaim_blob), validated)
        writer.flush()
        # Force an mtime difference (same-second writes can tie).
        stat = path.stat()
        os.utime(path, (stat.st_atime, stat.st_mtime + 1))
        assert reader.probe(gaim_blob) is not None

    def test_corrupt_cache_file_is_cold_start_not_crash(self, gaim_blob,
                                                        tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json")
        cache = AdmitCache(path)
        assert len(cache) == 0
        assert cache.probe(gaim_blob) is None


class TestIntraBatchDedup:
    def test_same_batch_duplicates_defer_to_leader(self, gaim_blob,
                                                   resolver, tmp_path):
        store = ReportStore(tmp_path / "store", num_shards=2)
        pipeline = IngestPipeline(
            store, resolver,
            admit_cache=AdmitCache(tmp_path / "cache.json",
                                   reverify_fraction=0.0))
        results = pipeline.ingest_many([
            ("one", gaim_blob, 0),
            ("two", gaim_blob, 1),
            ("three", gaim_blob, 2),
        ])
        assert all(result.accepted for result in results)
        assert len({result.digest for result in results}) == 1
        assert pipeline.cache_hits == 2  # one leader validated
        assert len(store) == 3

    def test_rejected_leader_rejects_its_duplicates(self, resolver,
                                                    tmp_path):
        store = ReportStore(tmp_path / "store", num_shards=2)
        pipeline = IngestPipeline(
            store, resolver,
            admit_cache=AdmitCache(tmp_path / "cache.json",
                                   reverify_fraction=0.0))
        bogus = b"BGNT" + b"\x00" * 64
        results = pipeline.ingest_many([
            ("one", bogus, 0),
            ("two", bogus, 1),
        ])
        assert not results[0].accepted
        assert not results[1].accepted
        assert results[0].reason == results[1].reason
        assert len(store) == 0
