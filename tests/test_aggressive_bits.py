"""Tests for the Section 4.4 aggressive bit-preservation scheme.

The paper's basic scheme clears every first-load bit at each checkpoint;
the "more aggressive solution" (left as future work there, implemented
here behind ``BugNetConfig.bit_clear_period``) keeps them across
interval and interrupt boundaries, clearing only at periodic *major*
checkpoints.  The invariants:

* replaying the chain from a major checkpoint is still bit-exact,
* the aggressive scheme never logs *more* than the basic one,
* syscall-heavy code logs meaningfully less,
* DMA invalidation still forces re-logging (the correctness condition
  the paper calls out).
"""

import pytest

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay import Replayer, assert_traces_equal

SYSCALL_HEAVY = """
.data
table: .space 1024
.text
main:
    li   s0, 0
    li   s1, 40
outer:
    li   s2, 0
    la   s3, table
inner:                      # re-walk the same table every iteration
    sll  t0, s2, 2
    add  t0, s3, t0
    lw   t1, 0(t0)
    add  t1, t1, s0
    sw   t1, 0(t0)
    addi s2, s2, 1
    blt  s2, 32, inner
    li   v0, 5              # YIELD: a synchronous interrupt each pass
    syscall
    addi s0, s0, 1
    blt  s0, s1, outer
    li   v0, 1
    syscall
"""


def record(period, source=SYSCALL_HEAVY, **kwargs):
    program = assemble(source)
    machine = Machine(
        program, MachineConfig(),
        BugNetConfig(checkpoint_interval=100_000, bit_clear_period=period),
        collect_traces=True, **kwargs,
    )
    machine.spawn()
    result = machine.run()
    return program, machine, result


class TestAggressiveScheme:
    def test_replay_still_bit_exact(self):
        program, machine, result = record(period=8)
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        assert any(not f.header.major for f in flls)
        replays = Replayer(program, machine.bugnet).replay(flls)
        events = [e for r in replays for e in r.events]
        assert_traces_equal(machine.collectors[0], events)

    def test_never_logs_more_than_basic(self):
        _, basic, _ = record(period=1)
        _, aggressive, _ = record(period=8)
        assert aggressive.recorders[0].loads_logged <= \
            basic.recorders[0].loads_logged

    def test_saves_on_syscall_heavy_code(self):
        _, basic, _ = record(period=1)
        _, aggressive, _ = record(period=1_000_000)
        saved = (basic.recorders[0].loads_logged
                 - aggressive.recorders[0].loads_logged)
        # Each of the ~40 yields forces a table re-log under the basic
        # scheme; the aggressive one logs the table once.
        assert saved > 32 * 20

    def test_major_flag_period(self):
        _, _, result = record(period=4)
        majors = [cp.fll.header.major
                  for cp in result.log_store.checkpoints(0)]
        assert majors[0] is True
        for index, major in enumerate(majors):
            assert major == (index % 4 == 0)

    def test_period_one_all_major(self):
        _, _, result = record(period=1)
        assert all(cp.fll.header.major
                   for cp in result.log_store.checkpoints(0))

    def test_dma_still_forces_relog(self):
        source = """
.data
buf: .space 64
.text
main:
    lw   t0, buf            # logged in interval 1
    li   v0, 5
    syscall                 # interval 2 begins, bits preserved
    lw   t1, buf            # NOT re-logged (aggressive win)
    la   a0, buf
    li   a1, 2
    li   v0, 4
    syscall                 # DMA overwrites buf, invalidating the block
    lw   t2, buf            # MUST be re-logged with the new value
    move a0, t2
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""
        program, machine, result = record(
            period=1_000_000, source=source, input_words=[555, 666],
        )
        assert result.console_values == [555]
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        replays = Replayer(program, machine.bugnet).replay(flls)
        events = [e for r in replays for e in r.events]
        assert_traces_equal(machine.collectors[0], events)
        # The DMA-refreshed value was consumed from the log.
        refreshed = [e for e in events if e.from_log and e.load
                     and e.load[1] == 555]
        assert refreshed

    def test_multithreading_one_core_rejected(self):
        program = assemble("main: li v0, 1\n syscall")
        machine = Machine(program, MachineConfig(num_cores=1),
                          BugNetConfig(checkpoint_interval=100,
                                       bit_clear_period=4))
        machine.spawn()
        with pytest.raises(ValueError, match="one thread per core"):
            machine.spawn()

    def test_multicore_aggressive_allowed_and_replays(self):
        source = """
.data
private: .space 256
.text
main:
    li   s0, 0
    la   s1, private
loop:
    andi t0, s0, 31
    sll  t0, t0, 2
    add  t0, s1, t0
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    li   v0, 5
    syscall
    addi s0, s0, 1
    blt  s0, 20, loop
    li   v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(num_cores=2),
                          BugNetConfig(checkpoint_interval=100_000,
                                       bit_clear_period=8),
                          collect_traces=True)
        machine.spawn()
        machine.spawn()
        result = machine.run()
        for tid in (0, 1):
            flls = [cp.fll for cp in result.log_store.checkpoints(tid)]
            events = [e for r in Replayer(program, machine.bugnet).replay(flls)
                      for e in r.events]
            assert_traces_equal(machine.collectors[tid], events,
                                context=f"t{tid}")

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            BugNetConfig(bit_clear_period=0)
