"""Unit tests for the BN32 substrate: registers, memory, program, loader."""

import pytest

from repro.arch.isa import CODE_BASE, DATA_BASE, HEAP_BASE, index_to_pc, pc_to_index
from repro.arch.loader import load_program, stack_top_for_thread
from repro.arch.memory import PAGE_SIZE, Memory
from repro.arch.program import Program
from repro.arch.registers import NUM_REGS, RegisterFile, reg_name, reg_num
from repro.arch.assembler import assemble
from repro.common.errors import AlignmentFault, MemoryFault


class TestRegisters:
    def test_aliases(self):
        assert reg_num("zero") == 0
        assert reg_num("sp") == 29
        assert reg_num("ra") == 31
        assert reg_num("t0") == 8
        assert reg_num("s0") == 16

    def test_dollar_prefix_and_case(self):
        assert reg_num("$SP") == 29

    def test_numeric_names(self):
        assert reg_num("r5") == 5

    def test_unknown_register(self):
        with pytest.raises(KeyError):
            reg_num("x99")

    def test_reg_name_roundtrip(self):
        for num in range(NUM_REGS):
            assert reg_num(reg_name(num)) == num

    def test_r0_hardwired_zero(self):
        regs = RegisterFile()
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_writes_masked_to_32_bits(self):
        regs = RegisterFile()
        regs.write(1, 1 << 35 | 7)
        assert regs.read(1) == 7

    def test_snapshot_restore(self):
        regs = RegisterFile()
        regs["t0"] = 42
        snap = regs.snapshot()
        regs["t0"] = 0
        regs.restore(snap)
        assert regs["t0"] == 42

    def test_snapshot_is_immutable_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        regs["t1"] = 9
        assert snap[reg_num("t1")] == 0

    def test_restore_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile().restore((0,) * 31)

    def test_restore_forces_r0_zero(self):
        regs = RegisterFile()
        regs.restore(tuple([7] * NUM_REGS))
        assert regs.read(0) == 0


class TestMemory:
    def test_unmapped_load_faults(self):
        with pytest.raises(MemoryFault):
            Memory().load(0x1000)

    def test_unmapped_store_faults(self):
        with pytest.raises(MemoryFault):
            Memory().store(0x1000, 1)

    def test_mapped_roundtrip(self):
        mem = Memory()
        mem.map_page(0x1000)
        mem.store(0x1000, 0xCAFEBABE)
        assert mem.load(0x1000) == 0xCAFEBABE

    def test_unaligned_access_faults(self):
        mem = Memory()
        mem.map_page(0x1000)
        with pytest.raises(AlignmentFault):
            mem.load(0x1002)

    def test_null_page_faults(self):
        with pytest.raises(MemoryFault):
            Memory().load(0)

    def test_map_range_covers_boundary(self):
        mem = Memory()
        mem.map_range(PAGE_SIZE - 4, 8)  # straddles two pages
        mem.store(PAGE_SIZE - 4, 1)
        mem.store(PAGE_SIZE, 2)

    def test_unmap_page(self):
        mem = Memory()
        mem.map_page(0x1000)
        mem.unmap_page(0x1000)
        with pytest.raises(MemoryFault):
            mem.load(0x1000)

    def test_poke_peek_skip_checks(self):
        mem = Memory()
        mem.poke(0x5000, 7)
        assert mem.peek(0x5000) == 7

    def test_fault_checks_disable(self):
        mem = Memory(fault_checks=False)
        mem.store(0x9999998, 3)  # no mapping, aligned address
        assert mem.load(0x9999998) == 3

    def test_footprint_counts_pages(self):
        mem = Memory()
        mem.map_range(0x1000, 3 * PAGE_SIZE)
        assert mem.footprint_bytes == 3 * PAGE_SIZE

    def test_values_masked(self):
        mem = Memory()
        mem.poke(0x100, -1)
        assert mem.peek(0x100) == 0xFFFFFFFF

    def test_load_block(self):
        mem = Memory()
        for index in range(4):
            mem.poke(0x100 + 4 * index, index + 1)
        assert mem.load_block(0x100, 4) == [1, 2, 3, 4]


class TestProgramAndLoader:
    SOURCE = """
.data
value: .word 99
.text
entry:
    nop
main:
    nop
    nop
"""

    def test_entry_pc_is_main(self):
        program = assemble(self.SOURCE)
        assert program.entry_pc == program.pc_of("main")
        assert program.entry_pc == CODE_BASE + 4

    def test_entry_defaults_to_code_base_without_main(self):
        program = assemble("start: nop")
        assert program.entry_pc == CODE_BASE

    def test_source_line_mapping(self):
        program = assemble(self.SOURCE)
        line = program.source_line_of(program.pc_of("main"))
        assert line == 8  # the first nop under main: (leading blank line)

    def test_fetch_out_of_range_is_none(self):
        program = assemble("main: nop")
        assert program.fetch(CODE_BASE + 400) is None
        assert program.fetch(CODE_BASE - 4) is None
        assert program.fetch(CODE_BASE + 1) is None

    def test_pc_index_roundtrip(self):
        assert pc_to_index(index_to_pc(17)) == 17

    def test_loader_maps_data(self):
        program = assemble(self.SOURCE)
        mem = Memory()
        load_program(program, mem)
        assert mem.load(DATA_BASE) == 99

    def test_loader_maps_heap(self):
        program = assemble(self.SOURCE)
        mem = Memory()
        load_program(program, mem, heap_bytes=PAGE_SIZE)
        mem.store(HEAP_BASE, 5)

    def test_loader_returns_usable_sp(self):
        program = assemble(self.SOURCE)
        mem = Memory()
        sp = load_program(program, mem)
        mem.store(sp, 1)
        mem.store(sp - 1024, 1)

    def test_thread_stacks_disjoint(self):
        top0 = stack_top_for_thread(0)
        top1 = stack_top_for_thread(1)
        assert top0 - top1 > 64 * 1024  # stack + guard page apart

    def test_data_size(self):
        program = assemble(self.SOURCE)
        assert program.data_size == 4
