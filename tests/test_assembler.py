"""Unit tests for the BN32 assembler."""

import pytest

from repro.arch.assembler import assemble
from repro.arch.isa import CODE_BASE, DATA_BASE
from repro.common.errors import AssemblerError


def ops_of(source):
    return [ins.op for ins in assemble(source).instructions]


class TestDirectives:
    def test_word_values(self):
        program = assemble(".data\nvals: .word 1, 2, -1\n.text\nmain: nop")
        assert program.data_words[DATA_BASE] == 1
        assert program.data_words[DATA_BASE + 4] == 2
        assert program.data_words[DATA_BASE + 8] == 0xFFFFFFFF

    def test_word_with_label_reference(self):
        program = assemble(
            ".data\nptr: .word target\ntarget: .word 7\n.text\nmain: nop"
        )
        assert program.data_words[DATA_BASE] == DATA_BASE + 4

    def test_space_reserves_word_aligned(self):
        program = assemble(".data\nbuf: .space 10\nnxt: .word 1\n.text\nmain: nop")
        assert program.symbols["nxt"] == DATA_BASE + 12

    def test_asciiz_one_char_per_word(self):
        program = assemble('.data\ns: .asciiz "ab"\n.text\nmain: nop')
        assert program.data_words[DATA_BASE] == ord("a")
        assert program.data_words[DATA_BASE + 4] == ord("b")
        assert program.data_words[DATA_BASE + 8] == 0

    def test_asciiz_escapes(self):
        program = assemble('.data\ns: .asciiz "a\\nb"\n.text\nmain: nop')
        assert program.data_words[DATA_BASE + 4] == ord("\n")

    def test_equ_constant(self):
        program = assemble(".equ LIMIT, 7\nmain: li t0, LIMIT")
        assert program.instructions[0].imm == 7

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 3\nmain: nop")

    def test_instruction_in_data_segment_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nadd t0, t0, t0")


class TestPseudoInstructions:
    def test_li_small_is_addi(self):
        assert ops_of("main: li t0, 5") == ["addi"]

    def test_li_negative_small_is_addi(self):
        program = assemble("main: li t0, -3")
        assert program.instructions[0].op == "addi"
        assert program.instructions[0].imm == -3

    def test_li_high_halfword_is_lui(self):
        assert ops_of("main: li t0, 0x10000") == ["lui"]

    def test_li_large_is_lui_ori(self):
        assert ops_of("main: li t0, 0x12345678") == ["lui", "ori"]

    def test_la_is_always_two_instructions(self):
        assert ops_of(".data\nx: .word 0\n.text\nmain: la t0, x") == ["lui", "ori"]

    def test_move_is_or(self):
        assert ops_of("main: move t0, t1") == ["or"]

    def test_b_is_unconditional_beq(self):
        program = assemble("main: b main")
        ins = program.instructions[0]
        assert (ins.op, ins.rs, ins.rt) == ("beq", 0, 0)

    def test_beqz_bnez(self):
        assert ops_of("main: beqz t0, main\n bnez t1, main") == ["beq", "bne"]

    def test_bgt_swaps_operands(self):
        program = assemble("main: bgt t0, t1, main")
        ins = program.instructions[0]
        assert ins.op == "blt"
        assert ins.rs == 9 and ins.rt == 8  # t1, t0 swapped

    def test_branch_immediate_rhs_materializes(self):
        ops = ops_of("main: blt t0, 4, main")
        assert ops == ["addi", "blt"]

    def test_branch_large_immediate_rhs(self):
        ops = ops_of("main: blt t0, 0x99999, main")
        assert ops == ["lui", "ori", "blt"]

    def test_ret_is_jr_ra(self):
        program = assemble("main: ret")
        assert program.instructions[0].op == "jr"
        assert program.instructions[0].rs == 31

    def test_call_is_jal(self):
        program = assemble("main: call main")
        assert program.instructions[0].op == "jal"

    def test_lw_label_expansion(self):
        ops = ops_of(".data\nx: .word 1\n.text\nmain: lw t0, x")
        assert ops == ["lui", "ori", "lw"]

    def test_not_is_nor(self):
        assert ops_of("main: not t0, t1") == ["nor"]

    def test_subi(self):
        program = assemble("main: subi t0, t1, 5")
        assert program.instructions[0].op == "addi"
        assert program.instructions[0].imm == -5


class TestOperandsAndLayout:
    def test_memory_offset_forms(self):
        program = assemble("main: lw t0, 8(sp)\n sw t1, -4(fp)")
        assert program.instructions[0].imm == 8
        assert program.instructions[1].imm == -4

    def test_empty_offset_defaults_zero(self):
        program = assemble("main: lw t0, (sp)")
        assert program.instructions[0].imm == 0

    def test_branch_targets_are_absolute(self):
        program = assemble("main: nop\nloop: beq t0, t1, loop")
        assert program.instructions[1].imm == CODE_BASE + 4

    def test_label_plus_offset(self):
        program = assemble(".data\narr: .word 1,2,3\n.text\nmain: la t0, arr+8")
        value = (program.instructions[0].imm << 16) | program.instructions[1].imm
        assert value == DATA_BASE + 8

    def test_forward_reference(self):
        program = assemble("main: j end\n nop\nend: nop")
        assert program.instructions[0].imm == CODE_BASE + 8

    def test_multiple_labels_same_address(self):
        program = assemble("a:\nb: nop")
        assert program.symbols["a"] == program.symbols["b"]

    def test_label_and_instruction_same_line(self):
        program = assemble("main: nop")
        assert program.symbols["main"] == CODE_BASE

    def test_char_literal(self):
        program = assemble("main: li t0, 'A'")
        assert program.instructions[0].imm == 65

    def test_comments_stripped(self):
        assert ops_of("main: nop # a comment\n# whole line") == ["nop"]

    def test_pass1_pass2_sizes_agree(self):
        # A program mixing every variable-size expansion; labels after
        # them must resolve to the right addresses.
        source = """
.data
x: .word 1
.text
main:
    li   t0, 0x12345678
    la   t1, x
    lw   t2, x
    blt  t0, 100000, target
    li   t3, x
target:
    nop
"""
        program = assemble(source)
        index = (program.pc_of("target") - CODE_BASE) // 4
        assert program.instructions[index].op == "nop"


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError):
            assemble("main: frobnicate t0")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble("main: add q0, t0, t1")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("main: j nowhere")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("main: add t0, t1")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("main: addi t0, t1, 40000")

    def test_shift_amount_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("main: sll t0, t1, 32")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("main: nop\n bogus t0")

    def test_andi_negative_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("main: andi t0, t1, -1")
