"""Automated autopsies: single reports, verdict taxonomy, whole-fleet runs.

The fleet test is the subsystem's acceptance criterion: synthesize
fleet traffic from the Table-1 bug suite exactly like ``bugnet
fleet-sim``, ingest it, then run ``autopsy_store`` unattended — every
bucket's verdict must name the true injected defect site (the culprit
store's source line is the annotated ``root_cause`` line, or for
computed/remote classes the root-cause line is in the backward slice).
"""

import json

import pytest

from repro.cli import main
from repro.common.config import BugNetConfig
from repro.fleet.ingest import IngestPipeline
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets, render_triage
from repro.forensics.autopsy import (
    ALL_VERDICTS,
    VERDICT_CODE_POINTER,
    VERDICT_NULL_POINTER,
    VERDICT_RACE_REMOTE,
    VERDICT_WILD_ARITHMETIC,
    autopsy_store,
    bug_suite_resolver,
    perform_autopsy,
)
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

FLEET_BUGS = ("bc-1.06", "tar-1.13.25", "gnuplot-3.7.1-1",
              "tidy-34132-2", "tidy-34132-3", "python-2.1.1-2")


def _crash(name, interval=10_000):
    bug = BUGS_BY_NAME[name]
    config = BugNetConfig(checkpoint_interval=interval)
    run = run_bug(bug, bugnet=config, record=True)
    assert run.crashed, name
    return run, config


def _root_line(program):
    return program.source_line_of(program.pc_of("root_cause"))


class TestSingleAutopsy:
    def test_null_pointer_store(self):
        run, config = _crash("bc-1.06")
        autopsy = perform_autopsy(run.result.crash, config, run.program)
        assert autopsy.verdict == VERDICT_NULL_POINTER
        assert autopsy.culprit_line == _root_line(run.program)
        assert _root_line(run.program) in autopsy.slice_lines
        assert autopsy.culprit_value == 0

    def test_corrupted_code_pointer(self):
        run, config = _crash("ncompress-4.2.4")
        autopsy = perform_autopsy(run.result.crash, config, run.program)
        assert autopsy.verdict == VERDICT_CODE_POINTER
        assert autopsy.culprit_line == _root_line(run.program)

    def test_wild_address_arithmetic(self):
        run, config = _crash("python-2.1.1-1")
        autopsy = perform_autopsy(run.result.crash, config, run.program)
        assert autopsy.verdict == VERDICT_WILD_ARITHMETIC
        # No store culprit exists; the defect (the overflowing mul) must
        # be inside the fault slice.
        assert _root_line(run.program) in autopsy.slice_lines

    def test_race_adjacent_remote_store(self):
        run, config = _crash("gaim-0.82.1")
        autopsy = perform_autopsy(run.result.crash, config, run.program)
        assert autopsy.verdict == VERDICT_RACE_REMOTE
        assert autopsy.race_adjacent
        # The culprit is the *other thread's* racing store — located via
        # MRL race inference at the annotated root-cause line.
        assert autopsy.culprit_line == _root_line(run.program)

    def test_render_and_dict_shapes(self):
        run, config = _crash("tidy-34132-2")
        autopsy = perform_autopsy(run.result.crash, config, run.program)
        text = autopsy.render()
        assert "verdict" in text and "culprit" in text
        payload = autopsy.to_dict()
        assert payload["verdict"] in ALL_VERDICTS
        assert payload["culprit"]["line"] == autopsy.culprit_line
        json.dumps(payload)   # JSON-safe


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    """A small fleet store covering every default fleet-sim bug, with
    duplicate reports at different checkpoint intervals (the realistic
    byte-different-duplicates traffic)."""
    root = tmp_path_factory.mktemp("autopsy-fleet")
    store = ReportStore(root, num_shards=4)
    programs = {}
    items = []
    intervals = (5_000, 25_000)
    for index, name in enumerate(FLEET_BUGS):
        for interval in intervals[: 2 if index % 2 == 0 else 1]:
            bug = BUGS_BY_NAME[name]
            config = BugNetConfig(checkpoint_interval=interval)
            run = run_bug(bug, bugnet=config, record=True)
            assert run.crashed
            programs.setdefault(name, run.program)
            items.append((f"{name}@{interval}",
                          dump_crash_report(run.result.crash, config), None))
    pipeline = IngestPipeline(store, programs.get)
    results = pipeline.ingest_many(items)
    assert all(result.accepted for result in results)
    return store


class TestFleetAutopsy:
    def test_every_bucket_root_caused(self, fleet_store):
        results = autopsy_store(fleet_store, bug_suite_resolver(), workers=2)
        assert len(results) == len(FLEET_BUGS)
        for outcome in results:
            assert outcome.error == ""
            autopsy = outcome.autopsy
            assert autopsy is not None
            assert autopsy.verdict in ALL_VERDICTS
            program = BUGS_BY_NAME[outcome.program_name].program()
            root_line = _root_line(program)
            # The acceptance bar: the verdict names the true defect
            # site — the culprit store is the annotated root cause, and
            # the slice contains it.
            assert autopsy.culprit_line == root_line, outcome.program_name
            assert root_line in autopsy.slice_lines, outcome.program_name

    def test_worker_pool_matches_serial(self, fleet_store):
        serial = autopsy_store(fleet_store, bug_suite_resolver(), workers=1)
        pooled = autopsy_store(fleet_store, bug_suite_resolver(), workers=4)
        assert [r.digest for r in serial] == [r.digest for r in pooled]
        assert ([r.autopsy.verdict for r in serial]
                == [r.autopsy.verdict for r in pooled])
        assert ([r.autopsy.culprit_line for r in serial]
                == [r.autopsy.culprit_line for r in pooled])

    def test_triage_links_autopsies(self, fleet_store):
        buckets = build_buckets(fleet_store)
        results = autopsy_store(fleet_store, bug_suite_resolver())
        autopsies = {result.digest: result for result in results}
        text = render_triage(buckets, autopsies=autopsies)
        assert "root cause" in text
        for result in results:
            assert result.autopsy.verdict in text

    def test_unknown_program_reported_not_raised(self, fleet_store):
        results = autopsy_store(fleet_store, lambda name: None)
        assert all(result.autopsy is None for result in results)
        assert all("unknown program" in result.error for result in results)

    def test_cli_autopsy_store_json(self, fleet_store, capsys):
        code = main(["autopsy", "--store", str(fleet_store.root), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0
        assert len(payload["buckets"]) == len(FLEET_BUGS)
        for bucket in payload["buckets"]:
            autopsy = bucket["autopsy"]
            assert autopsy["verdict"] in ALL_VERDICTS
            assert autopsy["culprit"]["line"] is not None

    def test_cli_triage_autopsy_json(self, fleet_store, capsys):
        code = main(["triage", "--store", str(fleet_store.root),
                     "--autopsy", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all("autopsy" in bucket for bucket in payload["buckets"])


class TestCliSingleAutopsy:
    def test_source_report_pair(self, tmp_path, capsys):
        run, config = _crash("tidy-34132-3")
        blob = dump_crash_report(run.result.crash, config)
        report_path = tmp_path / "crash.bugnet"
        report_path.write_bytes(blob)
        source_path = tmp_path / "bug.s"
        source_path.write_text(BUGS_BY_NAME["tidy-34132-3"].source)
        code = main(["autopsy", str(source_path), str(report_path),
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] in ALL_VERDICTS
        assert payload["culprit"]["line"] is not None

    def test_store_and_pair_conflict(self, tmp_path, capsys):
        code = main(["autopsy", "a.s", "b.bugnet",
                     "--store", str(tmp_path)])
        assert code == 2

    def test_missing_args(self):
        assert main(["autopsy"]) == 2
