"""Unit tests for the log store (memory backing) and the bus model."""

from repro.common.config import BugNetConfig
from repro.tracing.backing import BusModel, LogStore
from repro.tracing.fll import FLLHeader, FLLWriter
from repro.tracing.mrl import MRLHeader, MRLWriter

REGS = tuple(range(32))


def checkpoint(config, cid, timestamp, records=0, end_ic=100):
    fll_writer = FLLWriter(config, FLLHeader(
        pid=1, tid=0, cid=cid, timestamp=timestamp, pc=0, regs=REGS,
    ))
    for index in range(records):
        fll_writer.append(0, index, None)
    mrl = MRLWriter(config, MRLHeader(
        pid=1, tid=0, cid=cid, timestamp=timestamp,
    )).finalize()
    return fll_writer.finalize(end_ic=end_ic), mrl


class TestLogStore:
    def test_unbounded_store_keeps_everything(self):
        config = BugNetConfig(checkpoint_interval=100)
        store = LogStore(config)
        for cid in range(10):
            fll, mrl = checkpoint(config, cid, cid)
            store.add(0, fll, mrl)
        assert len(store.checkpoints(0)) == 10
        assert store.evicted_checkpoints == 0

    def test_replay_window_sums_interval_lengths(self):
        config = BugNetConfig(checkpoint_interval=100)
        store = LogStore(config)
        for cid in range(4):
            fll, mrl = checkpoint(config, cid, cid, end_ic=25)
            store.add(0, fll, mrl)
        assert store.replay_window(0) == 100

    def test_budget_evicts_oldest(self):
        config = BugNetConfig(checkpoint_interval=100, log_memory_budget=2048)
        store = LogStore(config)
        for cid in range(20):
            fll, mrl = checkpoint(config, cid, cid, records=50)
            store.add(0, fll, mrl)
        assert store.total_bytes <= 2048
        assert store.evicted_checkpoints > 0
        remaining_cids = [cp.fll.header.cid for cp in store.checkpoints(0)]
        # The newest checkpoints survive.
        assert remaining_cids == sorted(remaining_cids)
        assert remaining_cids[-1] == 19

    def test_budget_evicts_oldest_across_threads(self):
        config = BugNetConfig(checkpoint_interval=100, log_memory_budget=4096)
        store = LogStore(config)
        timestamp = 0
        for round_index in range(20):
            for tid in (0, 1):
                fll, mrl = checkpoint(config, round_index, timestamp, records=40)
                store.add(tid, fll, mrl)
                timestamp += 1
        # Both threads keep their newest logs; oldest overall went first.
        newest_t0 = store.checkpoints(0)[-1].fll.header.timestamp
        oldest_t0 = store.checkpoints(0)[0].fll.header.timestamp
        assert newest_t0 > oldest_t0

    def test_newest_checkpoint_never_evicted(self):
        config = BugNetConfig(checkpoint_interval=100, log_memory_budget=64)
        store = LogStore(config)
        fll, mrl = checkpoint(config, 0, 0, records=100)
        store.add(0, fll, mrl)  # exceeds the budget on its own
        assert len(store.checkpoints(0)) == 1

    def test_equal_timestamp_eviction_tie_breaks_on_tid(self):
        # Checkpoints from different threads with identical timestamps:
        # the tie must break on the lowest tid, not dict iteration order.
        # Insert in scrambled tid order so insertion order and tid order
        # disagree, then shrink the budget one checkpoint at a time.
        config = BugNetConfig(checkpoint_interval=100)
        store = LogStore(config)
        for tid in (3, 1, 2):
            fll, mrl = checkpoint(config, 0, timestamp=7, records=40)
            store.add(tid, fll, mrl)
        protect = (99, checkpoint(config, 9, timestamp=99)[0])
        eviction_order = []
        while store.evicted_checkpoints < 2:
            before = {tid: len(store.checkpoints(tid)) for tid in (1, 2, 3)}
            assert store._evict_oldest(protect)
            eviction_order.extend(
                tid for tid in before
                if len(store.checkpoints(tid)) < before[tid]
            )
        # Lowest tids go first among the timestamp-7 ties.
        assert eviction_order == [1, 2]
        assert len(store.checkpoints(3)) == 1

    def test_equal_timestamp_eviction_independent_of_insertion_order(self):
        config = BugNetConfig(checkpoint_interval=100)
        protect = (99, checkpoint(config, 9, timestamp=99)[0])
        orders = ([1, 2, 3], [3, 2, 1], [2, 3, 1])
        sequences = []
        for order in orders:
            store = LogStore(config)
            for tid in order:
                fll, mrl = checkpoint(config, 0, timestamp=5, records=10)
                store.add(tid, fll, mrl)
            sequence = []
            for _ in range(3):
                before = {tid: len(store.checkpoints(tid)) for tid in order}
                assert store._evict_oldest(protect)
                for tid in order:
                    if len(store.checkpoints(tid)) < before[tid]:
                        sequence.append(tid)
            sequences.append(sequence)
        assert sequences[0] == sequences[1] == sequences[2] == [1, 2, 3]

    def test_byte_accounting(self):
        config = BugNetConfig(checkpoint_interval=100)
        store = LogStore(config)
        fll, mrl = checkpoint(config, 0, 0, records=10)
        store.add(0, fll, mrl)
        expected = fll.byte_size(config) + mrl.byte_size(config)
        assert store.total_bytes == expected
        assert store.fll_bytes(0) == fll.byte_size(config)
        assert store.mrl_bytes(0) == mrl.byte_size(config)

    def test_threads_listed(self):
        config = BugNetConfig(checkpoint_interval=100)
        store = LogStore(config)
        fll, mrl = checkpoint(config, 0, 0)
        store.add(3, fll, mrl)
        assert store.threads() == [3]


class TestBusModel:
    def test_no_traffic_no_overhead(self):
        bus = BusModel()
        bus.account_window(instructions=1000, fills=0, writebacks=0, log_bytes=0)
        assert bus.overhead == 0.0

    def test_light_logging_rides_idle_cycles(self):
        # The paper's claim: with idle bus bandwidth, overhead ~ 0.
        bus = BusModel()
        bus.account_window(instructions=100_000, fills=100, writebacks=10,
                           log_bytes=20_000)
        assert bus.overhead == 0.0
        assert bus.stall_cycles == 0

    def test_cb_absorbs_bursts(self):
        bus = BusModel(cb_bytes=16 * 1024)
        # A burst bigger than idle capacity but under CB size: no stall.
        bus.account_window(instructions=10, fills=10, writebacks=0,
                           log_bytes=8_000)
        assert bus.stall_cycles == 0
        assert bus.peak_cb_occupancy > 0

    def test_cb_overflow_stalls(self):
        bus = BusModel(cb_bytes=1024)
        bus.account_window(instructions=10, fills=10, writebacks=0,
                           log_bytes=50_000)
        assert bus.stall_cycles > 0
        assert bus.overhead > 0

    def test_backlog_drains_over_time(self):
        bus = BusModel(cb_bytes=16 * 1024)
        bus.account_window(instructions=10, fills=0, writebacks=0,
                           log_bytes=10_000)
        bus.account_window(instructions=100_000, fills=0, writebacks=0,
                           log_bytes=0)
        # After a long quiet window the CB is empty again.
        assert bus._cb_occupancy == 0

    def test_totals_accumulate(self):
        bus = BusModel()
        bus.account_window(1000, 5, 2, 100)
        bus.account_window(2000, 1, 0, 50)
        assert bus.instructions == 3000
        assert bus.fills == 6
        assert bus.log_bytes == 150
