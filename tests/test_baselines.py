"""Unit tests for the SafetyNet/FDR baseline models."""

import pytest

from repro.baselines.fdr import FDRConfig, FDRTraceRecorder, fdr_sizes_from_run
from repro.baselines.safetynet import SafetyNetCheckpointer
from repro.common.config import BugNetConfig
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


class TestSafetyNet:
    def test_first_store_logged_once(self):
        checkpointer = SafetyNetCheckpointer(block_size=64,
                                             checkpoint_interval=1000)
        assert checkpointer.on_store(0x100) is True
        assert checkpointer.on_store(0x104) is False  # same block
        assert checkpointer.on_store(0x1000) is True

    def test_undo_entry_size_is_block_plus_addr(self):
        checkpointer = SafetyNetCheckpointer(block_size=64,
                                             checkpoint_interval=1000)
        checkpointer.on_store(0)
        assert checkpointer.stats.undo_bytes == 64 + 8

    def test_interval_roll_relogs_blocks(self):
        checkpointer = SafetyNetCheckpointer(block_size=64,
                                             checkpoint_interval=10)
        checkpointer.on_store(0)
        checkpointer.on_commit(10)  # interval boundary
        assert checkpointer.on_store(0) is True
        assert checkpointer.stats.intervals == 2

    def test_register_snapshots_per_interval(self):
        checkpointer = SafetyNetCheckpointer(checkpoint_interval=5)
        checkpointer.on_commit(20)
        stats = checkpointer.close()
        assert stats.intervals == 4
        assert stats.register_snapshot_bytes == 4 * checkpointer.register_bytes

    def test_undo_bytes_dominate_bugnet_for_store_heavy_code(self):
        # SafetyNet logs a whole 64-byte block per first store; BugNet
        # logs nothing for stores.  This asymmetry is Table 2's core.
        checkpointer = SafetyNetCheckpointer(block_size=64,
                                             checkpoint_interval=10_000)
        for index in range(100):
            checkpointer.on_store(index * 64)
            checkpointer.on_commit()
        assert checkpointer.stats.undo_bytes == 100 * 72


class TestFDRTraceRecorder:
    def test_compression_counts_bytes(self):
        recorder = FDRTraceRecorder(FDRConfig(checkpoint_interval=1000))
        for index in range(200):
            recorder.on_store(index * 64)
            recorder.on_commit(5)
        stats = recorder.close()
        assert recorder.compressed_undo_bytes > 0
        assert recorder.compressed_undo_bytes < stats.undo_bytes

    def test_close_flushes_pending(self):
        recorder = FDRTraceRecorder()
        recorder.on_store(0)
        recorder.close()
        assert recorder.compressed_undo_bytes > 0


class TestFDRFromMachineRun:
    @pytest.fixture(scope="class")
    def sized_run(self):
        bug = BUGS_BY_NAME["gzip-1.2.4"]
        config = BugNetConfig(checkpoint_interval=10_000)
        run = run_bug(bug, bugnet=config, record=True, collect_traces=True)
        sizes = fdr_sizes_from_run(run.machine, run.result,
                                   FDRConfig(checkpoint_interval=50_000))
        return run, sizes, config

    def test_core_dump_matches_footprint(self, sized_run):
        run, sizes, _ = sized_run
        assert sizes.core_dump == run.machine.memory.footprint_bytes
        assert sizes.core_dump > 0

    def test_input_and_dma_logs_cover_payload(self, sized_run):
        run, sizes, _ = sized_run
        # The 1025-word filename crossed the I/O boundary once.
        assert sizes.input_log >= 1025 * 4
        assert sizes.dma_log == sizes.input_log

    def test_interrupt_log_counts_syscalls(self, sized_run):
        run, sizes, _ = sized_run
        assert sizes.interrupt_log >= run.machine.kernel.syscalls_serviced * 16

    def test_fdr_ships_more_than_bugnet(self, sized_run):
        # The paper's bottom line: FDR's shipment (with the core dump)
        # dwarfs BugNet's first-load logs for application debugging.
        run, sizes, config = sized_run
        bugnet_bytes = run.result.crash.total_bytes(config)
        assert sizes.shipped_total > 10 * bugnet_bytes

    def test_checkpoint_logs_positive(self, sized_run):
        _, sizes, _ = sized_run
        assert sizes.cache_checkpoint_log > 0
        assert sizes.memory_checkpoint_log > 0

    def test_digest_traces_rejected(self):
        bug = BUGS_BY_NAME["tidy-34132-2"]
        run = run_bug(bug, bugnet=BugNetConfig(checkpoint_interval=10_000),
                      record=True, collect_traces=True)
        run.machine.collectors[0].digest_only = True
        with pytest.raises(ValueError):
            fdr_sizes_from_run(run.machine, run.result)
