"""Unit tests for the bit-exact stream encoders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bits import (
    BitReader,
    BitWriter,
    bits_for,
    sign_extend,
    to_signed,
    to_unsigned,
)


class TestWordHelpers:
    def test_to_unsigned_wraps_negative(self):
        assert to_unsigned(-1) == 0xFFFFFFFF

    def test_to_unsigned_wraps_overflow(self):
        assert to_unsigned(1 << 32) == 0

    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFFFFFFFF) == -1

    def test_to_signed_min(self):
        assert to_signed(0x80000000) == -(1 << 31)

    def test_sign_extend_positive(self):
        assert sign_extend(0b0111, 4) == 7

    def test_sign_extend_negative(self):
        assert sign_extend(0b1111, 4) == -1

    def test_sign_extend_masks_high_bits(self):
        assert sign_extend(0x1F0, 4) == 0

    def test_bits_for_zero(self):
        assert bits_for(0) == 1

    def test_bits_for_powers(self):
        assert bits_for(31) == 5
        assert bits_for(32) == 6

    def test_bits_for_ten_million(self):
        # The paper's log2(checkpoint interval) sizing for a 10M interval.
        assert bits_for(10_000_000) == 24

    def test_bits_for_negative_raises(self):
        with pytest.raises(ValueError):
            bits_for(-1)


class TestBitWriter:
    def test_empty(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.getvalue() == b""

    def test_single_bits(self):
        writer = BitWriter()
        writer.write_bool(True)
        writer.write_bool(False)
        writer.write_bool(True)
        assert writer.bit_length == 3
        assert writer.getvalue() == bytes([0b10100000])

    def test_byte_length_rounds_up(self):
        writer = BitWriter()
        writer.write(0x1FF, 9)
        assert writer.byte_length == 2

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(4, 2)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(-1, 8)

    def test_zero_bits_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write(0, 0)

    def test_msb_first_layout(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b01, 2)
        # Stream: 101 01 -> 10101xxx
        assert writer.getvalue()[0] >> 3 == 0b10101

    def test_write_word(self):
        writer = BitWriter()
        writer.write_word(0xDEADBEEF)
        assert writer.getvalue() == bytes.fromhex("deadbeef")


class TestBitReader:
    def test_roundtrip_simple(self):
        writer = BitWriter()
        writer.write(0b1101, 4)
        writer.write(0xAB, 8)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        assert reader.read(4) == 0b1101
        assert reader.read(8) == 0xAB

    def test_read_past_end_raises(self):
        writer = BitWriter()
        writer.write(1, 1)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        reader.read(1)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_limit_respects_partial_final_byte(self):
        writer = BitWriter()
        writer.write(0b11, 2)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        assert reader.remaining == 2
        reader.read(2)
        assert reader.remaining == 0

    def test_bit_length_larger_than_data_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", 9)

    def test_read_across_byte_boundary(self):
        writer = BitWriter()
        writer.write(0x3FF, 10)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        assert reader.read(10) == 0x3FF

    def test_position_tracks(self):
        writer = BitWriter()
        writer.write(0, 5)
        writer.write(1, 3)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        reader.read(5)
        assert reader.position == 5


@given(
    fields=st.lists(
        st.integers(min_value=1, max_value=48).flatmap(
            lambda width: st.tuples(
                st.just(width),
                st.integers(min_value=0, max_value=(1 << width) - 1),
            )
        ),
        min_size=1,
        max_size=64,
    )
)
def test_bitstream_roundtrip_property(fields):
    """Any sequence of (width, value) fields decodes to what was written."""
    writer = BitWriter()
    for width, value in fields:
        writer.write(value, width)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    for width, value in fields:
        assert reader.read(width) == value
    assert reader.remaining == 0
