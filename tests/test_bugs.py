"""Integration tests for the Table-1 bug suite."""

import pytest

from repro.common.config import BugNetConfig
from repro.replay import Replayer, assert_traces_equal
from repro.workloads.bugs import BUG_SUITE, BUGS_BY_NAME, run_bug

FAST_BUGS = [bug for bug in BUG_SUITE if bug.target_window <= 50_000]
SLOW_BUGS = [bug for bug in BUG_SUITE if bug.target_window > 50_000]


class TestSuiteStructure:
    def test_eighteen_bugs(self):
        assert len(BUG_SUITE) == 18

    def test_four_multithreaded_programs(self):
        # The paper: "the last set of 4 programs are multithreaded" —
        # gaim, napster, python (two bugs in one program) and w3m.
        applications = {
            bug.name.split("-")[0] for bug in BUG_SUITE if bug.multithreaded
        }
        assert applications == {"gaim", "napster", "python", "w3m"}

    def test_names_unique(self):
        assert len(BUGS_BY_NAME) == len(BUG_SUITE)

    def test_all_have_root_cause_labels(self):
        for bug in BUG_SUITE:
            assert "root_cause" in bug.program().symbols, bug.name

    def test_scaled_entries_marked(self):
        scaled = {bug.name for bug in BUG_SUITE if bug.scale > 1}
        assert scaled == {"ghostscript-8.12", "tidy-34132-1", "xv-3.10a-2"}

    def test_paper_windows_match_table1(self):
        expected = {
            "bc-1.06": 591,
            "gzip-1.2.4": 32209,
            "ncompress-4.2.4": 17966,
            "polymorph-0.4.0": 6208,
            "tar-1.13.25": 6634,
            "ghostscript-8.12": 18030519,
            "gnuplot-3.7.1-1": 782,
            "gnuplot-3.7.1-2": 131751,
            "tidy-34132-1": 2537326,
            "tidy-34132-2": 13,
            "tidy-34132-3": 59,
            "xv-3.10a-1": 44557,
            "xv-3.10a-2": 7543600,
            "gaim-0.82.1": 74590,
            "napster-1.5.2": 189391,
            "python-2.1.1-1": 92,
            "python-2.1.1-2": 941,
            "w3m-0.3.2.2": 79309,
        }
        assert {b.name: b.paper_window for b in BUG_SUITE} == expected


@pytest.mark.parametrize("bug", FAST_BUGS, ids=lambda b: b.name)
class TestFastBugs:
    def test_crashes_with_expected_fault(self, bug):
        run = run_bug(bug, record=False)
        assert run.crashed, f"{bug.name} did not crash"
        kind = run.result.crash.fault_kind
        acceptable = set(bug.expect_fault) | (
            {"alignment"} if "memory" in bug.expect_fault else set()
        )
        assert kind in acceptable, f"{bug.name}: {kind}"

    def test_window_near_target(self, bug):
        run = run_bug(bug, record=False)
        low = bug.target_window * 0.5
        high = bug.target_window * 2.0 + 32
        assert low <= run.window <= high, (
            f"{bug.name}: window {run.window} vs target {bug.target_window}"
        )


@pytest.mark.parametrize("bug", SLOW_BUGS, ids=lambda b: b.name)
def test_slow_bugs_crash(bug):
    run = run_bug(bug, record=False)
    assert run.crashed
    assert 0.5 * bug.target_window <= run.window <= 2.0 * bug.target_window


@pytest.mark.parametrize(
    "name",
    ["bc-1.06", "gzip-1.2.4", "ncompress-4.2.4", "tar-1.13.25",
     "gnuplot-3.7.1-1", "tidy-34132-2", "python-2.1.1-2"],
)
def test_recorded_bug_replays_deterministically(name):
    """The headline claim, end to end: crash -> ship logs -> replay."""
    bug = BUGS_BY_NAME[name]
    config = BugNetConfig(checkpoint_interval=5_000)
    run = run_bug(bug, bugnet=config, record=True, collect_traces=True)
    assert run.crashed
    crash = run.result.crash
    tid = crash.faulting_tid
    flls = crash.flls_for(tid)
    replays = Replayer(run.program, config).replay(flls)
    events = [e for r in replays for e in r.events]
    assert_traces_equal(run.machine.collectors[tid], events, context=name)
    assert replays[-1].end_pc == crash.fault_pc


def test_multithreaded_bug_records_all_threads():
    bug = BUGS_BY_NAME["python-2.1.1-1"]
    run = run_bug(bug, bugnet=BugNetConfig(checkpoint_interval=5_000), record=True)
    assert run.crashed
    assert set(run.result.crash.thread_ids) == {0, 1}


def test_gaim_cross_thread_root_cause():
    bug = BUGS_BY_NAME["gaim-0.82.1"]
    run = run_bug(bug, record=False)
    assert run.crashed
    # The removal happened on the worker; the crash on the UI thread.
    assert run.root_thread != run.result.crash.faulting_tid
