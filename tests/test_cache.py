"""Unit tests for the cache substrate and the first-load-bit hierarchy."""

import pytest

from repro.cache.cache import Cache, CacheBlock, MODIFIED, SHARED
from repro.cache.hierarchy import FirstLoadHierarchy
from repro.common.config import CacheConfig

TINY_L1 = CacheConfig(size=512, associativity=2, block_size=64)   # 4 sets
TINY_L2 = CacheConfig(size=2048, associativity=4, block_size=64)  # 8 sets


def hierarchy():
    return FirstLoadHierarchy(TINY_L1, TINY_L2)


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(TINY_L1)
        assert cache.lookup(5) is None
        cache.insert(CacheBlock(5))
        assert cache.lookup(5) is not None

    def test_lru_eviction_order(self):
        cache = Cache(TINY_L1)
        num_sets = TINY_L1.num_sets
        first, second, third = 0, num_sets, 2 * num_sets  # same set
        cache.insert(CacheBlock(first))
        cache.insert(CacheBlock(second))
        victim = cache.insert(CacheBlock(third))
        assert victim.block_addr == first

    def test_lookup_promotes_to_mru(self):
        cache = Cache(TINY_L1)
        num_sets = TINY_L1.num_sets
        first, second, third = 0, num_sets, 2 * num_sets
        cache.insert(CacheBlock(first))
        cache.insert(CacheBlock(second))
        cache.lookup(first)  # promote
        victim = cache.insert(CacheBlock(third))
        assert victim.block_addr == second

    def test_remove_counts_invalidation_not_eviction(self):
        cache = Cache(TINY_L1)
        cache.insert(CacheBlock(3))
        cache.remove(3)
        assert cache.stats.invalidations == 1
        assert cache.stats.evictions == 0

    def test_clear_first_load_bits(self):
        cache = Cache(TINY_L1)
        block = CacheBlock(1)
        block.first_load_bits = 0xFFFF
        cache.insert(block)
        cache.clear_first_load_bits()
        assert cache.lookup(1).first_load_bits == 0

    def test_len_and_contains(self):
        cache = Cache(TINY_L1)
        cache.insert(CacheBlock(9))
        assert 9 in cache
        assert len(cache) == 1


class TestFirstLoadHierarchy:
    def test_first_access_is_first(self):
        assert hierarchy().access(0x1000, is_store=False) is True

    def test_second_access_not_first(self):
        h = hierarchy()
        h.access(0x1000, is_store=False)
        assert h.access(0x1000, is_store=False) is False

    def test_bits_are_per_word(self):
        h = hierarchy()
        h.access(0x1000, is_store=False)
        # A different word of the same block is still a first access.
        assert h.access(0x1004, is_store=False) is True

    def test_store_sets_bit_without_future_logging(self):
        # Paper §4.3: "if the first access ... is a store then we would
        # set the bit and not log the value"; later loads are suppressed.
        h = hierarchy()
        assert h.access(0x2000, is_store=True) is True
        assert h.access(0x2000, is_store=False) is False

    def test_clear_bits_on_new_interval(self):
        h = hierarchy()
        h.access(0x1000, is_store=False)
        h.clear_first_load_bits()
        assert h.access(0x1000, is_store=False) is True

    def test_l2_eviction_clears_bits(self):
        # Touch enough distinct blocks mapping to one L2 set to evict the
        # first, then re-access it: it must log again.
        h = hierarchy()
        num_sets = h.l2.num_sets
        block_bytes = TINY_L2.block_size
        conflicting = [
            (i * num_sets) * block_bytes for i in range(TINY_L2.associativity + 1)
        ]
        for addr in conflicting:
            h.access(addr, is_store=False)
        assert h.access(conflicting[0], is_store=False) is True

    def test_l1_eviction_preserves_bits_via_l2(self):
        # Evicting from L1 migrates bits into the L2: re-access must NOT
        # re-log while the block stays L2-resident.
        h = hierarchy()
        num_sets = h.l1.num_sets
        block_bytes = TINY_L1.block_size
        conflicting = [
            (i * num_sets) * block_bytes for i in range(TINY_L1.associativity + 1)
        ]
        for addr in conflicting:
            h.access(addr, is_store=False)
        # conflicting[0] is now L1-evicted but L2-resident.
        assert h.holds(conflicting[0] >> h.block_shift)
        assert h.access(conflicting[0], is_store=False) is False

    def test_invalidation_forces_relog(self):
        h = hierarchy()
        h.access(0x3000, is_store=False)
        assert h.invalidate_block(0x3000 >> h.block_shift) is True
        assert h.access(0x3000, is_store=False) is True

    def test_invalidate_absent_block(self):
        assert hierarchy().invalidate_block(0x7777) is False

    def test_store_marks_modified(self):
        h = hierarchy()
        h.access(0x4000, is_store=True)
        assert h.holds_modified(0x4000 >> h.block_shift)

    def test_downgrade_keeps_bits(self):
        h = hierarchy()
        h.access(0x4000, is_store=True)
        assert h.downgrade_block(0x4000 >> h.block_shift) is True
        assert not h.holds_modified(0x4000 >> h.block_shift)
        # Data unchanged, bits kept: no relog.
        assert h.access(0x4000, is_store=False) is False

    def test_memory_fills_counted(self):
        h = hierarchy()
        h.access(0x1000, is_store=False)
        h.access(0x1004, is_store=False)  # same block: one fill
        h.access(0x9000, is_store=False)
        assert h.memory_fills == 2

    def test_dirty_writeback_on_invalidate(self):
        h = hierarchy()
        h.access(0x5000, is_store=True)
        before = h.writebacks
        h.invalidate_block(0x5000 >> h.block_shift)
        assert h.writebacks == before + 1

    def test_inclusion_after_l2_eviction(self):
        # L2 eviction back-invalidates L1 (inclusive hierarchy).
        h = hierarchy()
        num_sets = h.l2.num_sets
        block_bytes = TINY_L2.block_size
        conflicting = [
            (i * num_sets) * block_bytes for i in range(TINY_L2.associativity + 1)
        ]
        for addr in conflicting:
            h.access(addr, is_store=False)
        victim_block = conflicting[0] >> h.block_shift
        assert victim_block not in h.l1
        assert victim_block not in h.l2

    def test_mismatched_block_sizes_rejected(self):
        small = CacheConfig(size=512, associativity=2, block_size=32)
        with pytest.raises(ValueError):
            FirstLoadHierarchy(small, TINY_L2)
