"""Tests for the ``bugnet`` command line."""

import pytest

from repro.cli import main

CRASHY = """
.data
buf: .space 16
.text
main:
    li   s0, 0
    li   s1, 25
warm:
    addi s0, s0, 1
    blt  s0, s1, warm
    lw   t0, 0(zero)
    li   v0, 1
    syscall
"""

CLEAN = """
main:
    li   a0, 7
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""


@pytest.fixture
def crashy_source(tmp_path):
    path = tmp_path / "crashy.s"
    path.write_text(CRASHY)
    return str(path)


@pytest.fixture
def clean_source(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def crash_file(crashy_source, tmp_path):
    out = tmp_path / "crash.bugnet"
    code = main(["run", crashy_source, "--interval", "10",
                 "--output", str(out)])
    assert code == 1
    return str(out)


class TestRun:
    def test_clean_exit_code_zero(self, clean_source, capsys):
        assert main(["run", clean_source]) == 0
        output = capsys.readouterr().out
        assert "[console] 7" in output
        assert "exited cleanly" in output

    def test_crash_exit_code_one(self, crashy_source, capsys):
        assert main(["run", crashy_source]) == 1
        assert "memory fault" in capsys.readouterr().out

    def test_crash_report_written(self, crash_file):
        import os

        assert os.path.getsize(crash_file) > 0

    def test_timeout_exit_code_two(self, tmp_path, capsys):
        path = tmp_path / "spin.s"
        path.write_text("main: b main")
        assert main(["run", str(path), "--max-instructions", "100"]) == 2


class TestReport:
    def test_summary_printed(self, crash_file, capsys):
        assert main(["report", crash_file]) == 0
        output = capsys.readouterr().out
        assert "memory fault" in output
        assert "shipment size" in output


class TestReplay:
    def test_replay_tail(self, crashy_source, crash_file, capsys):
        assert main(["replay", crashy_source, crash_file, "--tail", "5"]) == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "faults next at" in output
        assert "lw" in output or "blt" in output

    def test_replay_instruction_count(self, crashy_source, crash_file, capsys):
        main(["replay", crashy_source, crash_file])
        output = capsys.readouterr().out
        # 2 lis + 25 iterations * 2 + the lui/ori of the at-expansion...
        # just check a plausible count is reported.
        assert "replayed" in output


class TestDebug:
    def test_watchpoint_session(self, crashy_source, crash_file, capsys):
        assert main(["debug", crashy_source, crash_file,
                     "--break", "warm", "--stops", "2"]) == 0
        output = capsys.readouterr().out
        assert "breakpoint" in output
        assert "pc=0x" in output


class TestDisasm:
    def test_listing(self, crashy_source, capsys):
        assert main(["disasm", crashy_source, "--start", "main"]) == 0
        output = capsys.readouterr().out
        assert "main:" in output
        assert "addi" in output
