"""Tests for the ``bugnet`` command line."""

import json

import pytest

from repro.cli import main

CRASHY = """
.data
buf: .space 16
.text
main:
    li   s0, 0
    li   s1, 25
warm:
    addi s0, s0, 1
    blt  s0, s1, warm
    lw   t0, 0(zero)
    li   v0, 1
    syscall
"""

CLEAN = """
main:
    li   a0, 7
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""


@pytest.fixture
def crashy_source(tmp_path):
    path = tmp_path / "crashy.s"
    path.write_text(CRASHY)
    return str(path)


@pytest.fixture
def clean_source(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def crash_file(crashy_source, tmp_path):
    out = tmp_path / "crash.bugnet"
    code = main(["run", crashy_source, "--interval", "10",
                 "--output", str(out)])
    assert code == 1
    return str(out)


class TestRun:
    def test_clean_exit_code_zero(self, clean_source, capsys):
        assert main(["run", clean_source]) == 0
        output = capsys.readouterr().out
        assert "[console] 7" in output
        assert "exited cleanly" in output

    def test_crash_exit_code_one(self, crashy_source, capsys):
        assert main(["run", crashy_source]) == 1
        assert "memory fault" in capsys.readouterr().out

    def test_crash_report_written(self, crash_file):
        import os

        assert os.path.getsize(crash_file) > 0

    def test_timeout_exit_code_two(self, tmp_path, capsys):
        path = tmp_path / "spin.s"
        path.write_text("main: b main")
        assert main(["run", str(path), "--max-instructions", "100"]) == 2


class TestReport:
    def test_summary_printed(self, crash_file, capsys):
        assert main(["report", crash_file]) == 0
        output = capsys.readouterr().out
        assert "memory fault" in output
        assert "shipment size" in output

    def test_json_output(self, crash_file, capsys):
        assert main(["report", crash_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fault"]["kind"] == "memory"
        assert payload["fault"]["tid"] == 0
        assert payload["threads"]["0"]["replay_window"] > 0
        # Basic scheme: every checkpoint is major, so the grounded and
        # resident windows coincide.
        assert (payload["threads"]["0"]["replay_window"]
                == payload["threads"]["0"]["resident_window"])
        assert payload["shipment_bytes"] > 0
        assert payload["recorder"]["checkpoint_interval"] == 10


class TestReplay:
    def test_missing_tid_exits_nonzero(self, crashy_source, crash_file,
                                       capsys):
        assert main(["replay", crashy_source, crash_file, "--tid", "7"]) == 3
        err = capsys.readouterr().err
        assert "no replayable logs for thread 7" in err
        assert "threads with logs: 0" in err

    def test_replay_tail(self, crashy_source, crash_file, capsys):
        assert main(["replay", crashy_source, crash_file, "--tail", "5"]) == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "faults next at" in output
        assert "lw" in output or "blt" in output

    def test_replay_instruction_count(self, crashy_source, crash_file, capsys):
        main(["replay", crashy_source, crash_file])
        output = capsys.readouterr().out
        # 2 lis + 25 iterations * 2 + the lui/ori of the at-expansion...
        # just check a plausible count is reported.
        assert "replayed" in output


class TestDebug:
    def test_watchpoint_session(self, crashy_source, crash_file, capsys):
        assert main(["debug", crashy_source, crash_file,
                     "--break", "warm", "--stops", "2"]) == 0
        output = capsys.readouterr().out
        assert "breakpoint" in output
        assert "pc=0x" in output


class TestDisasm:
    def test_listing(self, crashy_source, capsys):
        assert main(["disasm", crashy_source, "--start", "main"]) == 0
        output = capsys.readouterr().out
        assert "main:" in output
        assert "addi" in output


class TestIngestTriage:
    def test_ingest_then_triage(self, crashy_source, crash_file, tmp_path,
                                capsys):
        store = str(tmp_path / "fleet")
        assert main(["ingest", "--store", store,
                     "--source", crashy_source, crash_file]) == 0
        output = capsys.readouterr().out
        assert "signature" in output
        assert main(["triage", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "Crash triage" in output
        assert "crashy.s" in output

    def test_corrupt_report_rejected(self, crashy_source, crash_file,
                                     tmp_path, capsys):
        bad = tmp_path / "bad.bugnet"
        data = bytearray(open(crash_file, "rb").read())
        data[len(data) // 2] ^= 0xFF
        bad.write_bytes(bytes(data))
        store = str(tmp_path / "fleet")
        assert main(["ingest", "--store", store,
                     "--source", crashy_source, str(bad)]) == 1
        assert "REJECTED" in capsys.readouterr().err
        assert main(["triage", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["buckets"] == []

    def test_duplicates_bucket_together(self, crashy_source, crash_file,
                                        tmp_path, capsys):
        store = str(tmp_path / "fleet")
        assert main(["ingest", "--store", store, "--source", crashy_source,
                     crash_file, crash_file, "--json"]) == 0
        ingest_payload = json.loads(capsys.readouterr().out)
        assert ingest_payload["accepted"] == 2
        assert len(ingest_payload["signatures"]) == 1
        assert main(["triage", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["buckets"]) == 1
        assert payload["buckets"][0]["count"] == 2


class TestFleetSim:
    def test_dedups_into_expected_buckets(self, tmp_path, capsys):
        store = str(tmp_path / "fleet")
        assert main(["fleet-sim", "--runs", "8", "--seed", "0",
                     "--bugs", "tidy-34132-2,tidy-34132-3",
                     "--corrupt", "1", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["accepted"] == 8
        assert payload["rejected"] == 1
        # Two distinct injected bugs -> exactly two buckets covering all
        # eight runs.
        assert len(payload["buckets"]) == 2
        assert sum(b["count"] for b in payload["buckets"]) == 8
        programs = {b["program"] for b in payload["buckets"]}
        assert programs == {"tidy-34132-2", "tidy-34132-3"}

    def test_triage_reads_fleet_sim_store(self, tmp_path, capsys):
        store = str(tmp_path / "fleet")
        assert main(["fleet-sim", "--runs", "4", "--seed", "3",
                     "--bugs", "tidy-34132-2", "--corrupt", "0",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["triage", "--store", store, "--limit", "5"]) == 0
        output = capsys.readouterr().out
        assert "tidy-34132-2" in output

    def test_unknown_bug_errors(self, capsys):
        assert main(["fleet-sim", "--runs", "1",
                     "--bugs", "no-such-bug"]) == 2
        assert "unknown bug" in capsys.readouterr().err

    def test_more_corrupt_blobs_than_runs(self, tmp_path, capsys):
        """Every injected blob must reject even when --corrupt exceeds
        --runs (double-XOR must not restore a valid report)."""
        store = str(tmp_path / "fleet")
        assert main(["fleet-sim", "--runs", "1", "--seed", "0",
                     "--bugs", "tidy-34132-2", "--corrupt", "3",
                     "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["accepted"] == 1
        assert payload["rejected"] == 3
        assert payload["corrupt_injected"] == 3


class TestTriageErrors:
    def test_missing_store_errors_without_creating_it(self, tmp_path,
                                                      capsys):
        missing = tmp_path / "nope"
        assert main(["triage", "--store", str(missing)]) == 2
        assert "no fleet store" in capsys.readouterr().err
        assert not missing.exists()

    def test_empty_store_directory_exits_zero(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["triage", "--store", str(empty)]) == 0
        assert "0 reports" in capsys.readouterr().out

    def test_empty_store_directory_json(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["triage", "--store", str(empty), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["buckets"] == []
        assert payload["store_reports"] == 0


class TestIngestEmptyInputs:
    """`bugnet ingest` on empty/missing report inputs: exit 0 with a
    clear "0 reports" message, no traceback, no store side effects."""

    def test_empty_directory(self, crashy_source, tmp_path, capsys):
        reports = tmp_path / "reports"
        reports.mkdir()
        store = tmp_path / "fleet"
        assert main(["ingest", "--store", str(store),
                     "--source", crashy_source, str(reports)]) == 0
        captured = capsys.readouterr()
        assert "0 reports" in captured.out
        assert not store.exists(), "no store should be created for nothing"

    def test_missing_directory(self, crashy_source, tmp_path, capsys):
        store = tmp_path / "fleet"
        assert main(["ingest", "--store", str(store),
                     "--source", crashy_source,
                     str(tmp_path / "no-such-dir")]) == 0
        captured = capsys.readouterr()
        assert "0 reports" in captured.out
        assert "no such report" in captured.err

    def test_missing_report_file_is_an_error(self, crashy_source,
                                             tmp_path, capsys):
        """A typo'd explicit report path must fail, not exit 0 — only
        empty/missing *directories* are the routine case."""
        assert main(["ingest", "--store", str(tmp_path / "fleet"),
                     "--source", crashy_source,
                     str(tmp_path / "crash.bugnet")]) == 2
        assert "no such report file" in capsys.readouterr().err

    def test_empty_inputs_json(self, crashy_source, tmp_path, capsys):
        reports = tmp_path / "reports"
        reports.mkdir()
        assert main(["ingest", "--store", str(tmp_path / "fleet"),
                     "--source", crashy_source, str(reports),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ingested"] == 0
        assert payload["accepted"] == 0

    def test_directory_expansion_ingests_reports(self, crashy_source,
                                                 crash_file, tmp_path,
                                                 capsys):
        reports = tmp_path / "reports"
        reports.mkdir()
        import shutil

        shutil.copy(crash_file, reports / "a.bugnet")
        shutil.copy(crash_file, reports / "b.bugnet")
        (reports / "ignored.txt").write_text("not a report")
        store = tmp_path / "fleet"
        assert main(["ingest", "--store", str(store),
                     "--source", crashy_source, str(reports),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ingested"] == 2
        assert payload["accepted"] == 2
