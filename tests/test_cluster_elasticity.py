"""Elastic membership: epoch-versioned specs, ring diffing, quorum
reads, and live add-node / decommission orchestration.

The property tests pin the two contracts the streaming plan relies on
(a degraded preference list still returns R distinct alive owners; the
ring diff is *exact* — a key's replica set changes between epochs iff
its token lies in a returned range).  The in-process tests then run
the real orchestration: three nodes on one asyncio loop, a fourth
joins and streams its ranges before the routing flip, an original
member drains out, and a quorum read at the final epoch flags the
dropped node's answers as stale instead of serving them.
"""

import asyncio
import json
import random

import pytest

from repro.fleet.cluster import admin
from repro.fleet.cluster.admin import (
    quorum_requirement,
    quorum_verdict,
)
from repro.fleet.cluster.harness import free_ports
from repro.fleet.cluster.node import ClusterNodeService
from repro.fleet.cluster.topology import (
    ClusterSpec,
    NodeRing,
    NodeSpec,
    diff_rings,
    ranges_gained_by,
    token_in_ranges,
)
from repro.fleet.loadsim import ServiceClient, synthesize_corpus
from repro.fleet.service import ServiceConfig
from repro.fleet.validate import ResolverSpec, route_key_of_blob

CORPUS_BUGS = ("tidy-34132-2", "tidy-34132-3")


@pytest.fixture(scope="module")
def corpus():
    _programs, items, failures = synthesize_corpus(
        8, CORPUS_BUGS, seed=23, corrupt=0, intervals=(2_000, 5_000),
    )
    assert failures == 0
    return items


def make_spec(count, replication=2, epoch=1):
    ports = free_ports(count)
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(node_id=f"n{index}", host="127.0.0.1",
                     port=ports[index])
            for index in range(count)
        ),
        replication=replication,
        epoch=epoch,
    )


class TestDegradedPreferenceList:
    """Satellite: k dead nodes never shrink the replica set while R
    alive nodes exist — the walk skips the dead and keeps going."""

    def test_k_deaths_still_yield_replication_distinct_alive_owners(self):
        rng = random.Random(1234)
        for trial in range(60):
            node_count = rng.randint(2, 9)
            replication = rng.randint(1, node_count)
            node_ids = [f"n{i}" for i in range(node_count)]
            ring = NodeRing(node_ids)
            dead_count = rng.randint(0, node_count - replication)
            alive = set(node_ids) - set(rng.sample(node_ids, dead_count))
            assert len(alive) >= replication
            token = rng.getrandbits(64)
            owners = ring.preference_list_token(
                token, replication, alive=alive
            )
            assert len(owners) == replication
            assert len(set(owners)) == replication
            assert set(owners) <= alive

    def test_all_dead_degrades_to_empty_not_error(self):
        ring = NodeRing(["a", "b"])
        assert ring.preference_list_token(0, 2, alive=set()) == []


class TestRingDiffExactness:
    """Satellite: the diff is the streaming plan.  A token's replica
    set changes between two epochs iff it lies in a returned range,
    and ``ranges_gained_by`` carves that plan up per target."""

    def _rings(self, rng):
        node_count = rng.randint(2, 6)
        node_ids = [f"n{i}" for i in range(node_count)]
        old = NodeRing(node_ids)
        new = NodeRing(node_ids + [f"n{node_count}"])
        return old, new, node_ids + [f"n{node_count}"]

    def test_diff_matches_brute_force_on_random_tokens(self):
        rng = random.Random(99)
        for trial in range(8):
            old, new, all_ids = self._rings(rng)
            replication = rng.randint(1, 3)
            transfers = diff_rings(old, new, replication)
            gained_ranges = {
                node_id: ranges_gained_by(transfers, node_id)
                for node_id in all_ids
            }
            for _probe in range(200):
                token = rng.getrandbits(64)
                old_set = old.preference_list_token(token, replication)
                new_set = new.preference_list_token(token, replication)
                for node_id in all_ids:
                    gains = (node_id in new_set
                             and node_id not in old_set)
                    in_plan = token_in_ranges(
                        token, gained_ranges[node_id]
                    )
                    assert gains == in_plan, (
                        f"token {token:#x}: node {node_id} "
                        f"{'gains' if gains else 'keeps'} it but the "
                        f"diff says {'streamed' if in_plan else 'not'}"
                    )

    def test_identical_rings_diff_to_nothing(self):
        ring = NodeRing(["a", "b", "c"])
        assert diff_rings(ring, ring, 2) == []

    def test_transfer_sources_hold_the_range_under_old_ring(self):
        old = NodeRing(["a", "b", "c"])
        new = NodeRing(["a", "b", "c", "d"])
        for transfer in diff_rings(old, new, 2):
            assert transfer.sources == tuple(
                old.preference_list_token(transfer.end, 2)
            )
            assert "d" in transfer.targets


class TestEpochSpec:
    def test_membership_changes_each_advance_the_epoch(self):
        spec = make_spec(3)
        joining = spec.add_member(
            NodeSpec(node_id="n3", host="127.0.0.1", port=1,
                     status="joining")
        )
        assert joining.epoch == spec.epoch + 1
        assert "n3" not in joining.active_ids
        active = joining.set_status("n3", "active")
        assert active.epoch == joining.epoch + 1
        assert "n3" in active.active_ids
        draining = active.set_status("n0", "draining")
        assert draining.epoch == active.epoch + 1
        assert "n0" not in draining.active_ids
        assert draining.has_node("n0")
        dropped = draining.drop_member("n0")
        assert dropped.epoch == draining.epoch + 1
        assert not dropped.has_node("n0")

    def test_activated_is_a_same_epoch_hypothetical(self):
        spec = make_spec(3).add_member(
            NodeSpec(node_id="n3", host="127.0.0.1", port=1,
                     status="joining")
        )
        target = spec.activated("n3")
        assert target.epoch == spec.epoch
        assert "n3" in target.active_ids

    def test_joining_and_draining_stay_off_the_routing_ring(self):
        spec = make_spec(4).set_status("n3", "draining")
        ring = spec.routing_ring()
        assert "n3" not in ring.node_ids
        assert set(ring.node_ids) == {"n0", "n1", "n2"}

    def test_load_rejects_replication_beyond_node_count(self, tmp_path):
        """Satellite: a spec demanding more replicas than members is
        refused at load with the file named."""
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps({
            "epoch": 1,
            "replication": 4,
            "nodes": [
                {"id": f"n{i}", "host": "127.0.0.1", "port": 1}
                for i in range(3)
            ],
        }))
        with pytest.raises(ValueError) as err:
            ClusterSpec.load(path)
        message = str(err.value)
        assert "cluster.json" in message
        assert "out of range" in message

    def test_dump_load_round_trips_statuses_and_epoch(self, tmp_path):
        spec = make_spec(3, epoch=7).set_status("n1", "draining")
        path = tmp_path / "cluster.json"
        spec.dump(path)
        loaded = ClusterSpec.load(path)
        assert loaded.epoch == spec.epoch
        assert loaded.node("n1").status == "draining"
        assert loaded.active_ids == spec.active_ids


class TestQuorumVerdict:
    def test_requirement_is_majority_of_replication_plus_one(self):
        assert quorum_requirement(1) == 1
        assert quorum_requirement(2) == 2
        assert quorum_requirement(3) == 2
        assert quorum_requirement(4) == 3
        assert quorum_requirement(5) == 3

    def test_consistent_majority_meets_quorum(self):
        verdict = quorum_verdict(
            {"n0": 3, "n1": 3, "n2": 3}, replication=2
        )
        assert verdict["ok"] is True
        assert verdict["epoch"] == 3
        assert verdict["consistent"] == ["n0", "n1", "n2"]
        assert verdict["stale"] == []
        assert verdict["unreachable"] == []

    def test_stale_minority_is_flagged_not_counted(self):
        verdict = quorum_verdict(
            {"n0": 2, "n1": 5, "n2": 5}, replication=2
        )
        assert verdict["epoch"] == 5
        assert verdict["stale"] == ["n0"]
        assert verdict["consistent"] == ["n1", "n2"]
        assert verdict["ok"] is True

    def test_partitioned_majority_fails_quorum(self):
        verdict = quorum_verdict(
            {"n0": 4, "n1": None, "n2": None}, replication=2
        )
        assert verdict["unreachable"] == ["n1", "n2"]
        assert verdict["ok"] is False


class TestStatsCheckCli:
    """Satellite: ``bugnet cluster stats --check`` is the health gate
    — non-zero exit naming every unreachable member."""

    def _spec_file(self, tmp_path):
        path = tmp_path / "cluster.json"
        make_spec(3).dump(path)
        return str(path)

    def test_check_exits_one_and_names_unreachable_nodes(
            self, tmp_path, capsys):
        from repro.cli import main

        code = main(["cluster", "stats", "--cluster",
                     self._spec_file(tmp_path), "--check"])
        assert code == 1
        err = capsys.readouterr().err
        assert "unreachable node(s)" in err
        for node_id in ("n0", "n1", "n2"):
            assert node_id in err

    def test_without_check_unreachable_is_reported_not_fatal(
            self, tmp_path, capsys):
        from repro.cli import main

        code = main(["cluster", "stats", "--cluster",
                     self._spec_file(tmp_path)])
        assert code == 0
        assert "unreachable" in capsys.readouterr().out

    def test_bad_spec_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cluster.json"
        path.write_text(json.dumps({
            "epoch": 1, "replication": 9,
            "nodes": [{"id": "n0", "host": "h", "port": 1}],
        }))
        assert main(["cluster", "stats", "--cluster", str(path)]) == 2
        assert "out of range" in capsys.readouterr().err


def start_node(services, tmp_path, spec, node_id, **kwargs):
    member = spec.node(node_id)
    kwargs.setdefault("gossip_interval", 0.05)
    kwargs.setdefault("anti_entropy_interval", 0.1)
    kwargs.setdefault("fail_after", 1.0)
    service = ClusterNodeService(
        tmp_path / f"store-{node_id}", ResolverSpec(), spec, node_id,
        config=ServiceConfig(host=member.host, port=member.port,
                             workers=0),
        **kwargs,
    )
    services[node_id] = service
    return service


async def wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() >= deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class TestEpochNegotiation:
    def test_stale_peer_heals_through_gossip(self, tmp_path):
        """A node holding an older spec is refused (stale-epoch), gets
        the newer spec pushed back, and converges without restart."""
        spec = make_spec(3)
        newer = spec.set_status("n2", "draining").set_status(
            "n2", "active"
        )  # same membership, epoch + 2
        assert newer.epoch == spec.epoch + 2

        async def scenario():
            services = {}
            try:
                for node_id in spec.node_ids:
                    await start_node(services, tmp_path, spec,
                                     node_id).start()
                member = spec.node("n0")
                client = ServiceClient(member.host, member.port)
                try:
                    response = await client.request({
                        "op": "spec-update", "spec": newer.to_dict(),
                    })
                finally:
                    await client.close()
                assert response.get("status") == "ok"
                assert services["n0"].spec.epoch == newer.epoch
                # n0's next gossip to n1/n2 is refused stale-epoch; n0
                # pushes its spec on the refusal and everyone heals.
                await wait_until(lambda: all(
                    s.spec.epoch == newer.epoch
                    for s in services.values()
                ))
                healed = [s for s in services.values()
                          if s.node_id != "n0"]
                assert all(
                    s.cluster_counters["spec_updates"] >= 1
                    for s in healed
                )
                assert sum(
                    s.cluster_counters["stale_epochs"]
                    for s in services.values()
                ) >= 1
            finally:
                for service in services.values():
                    await service.stop()

        asyncio.run(scenario())

    def test_node_refuses_spec_that_drops_itself(self, tmp_path):
        """The final decommission spec is deliberately not adopted by
        the dropped node: it stays at the stale epoch, so quorum reads
        flag its answers instead of merging them."""
        spec = make_spec(3)
        without_n0 = spec.set_status("n0", "draining").drop_member("n0")

        async def scenario():
            services = {}
            try:
                await start_node(services, tmp_path, spec, "n0",
                                 anti_entropy_interval=30.0).start()
                member = spec.node("n0")
                client = ServiceClient(member.host, member.port)
                try:
                    response = await client.request({
                        "op": "spec-update",
                        "spec": without_n0.to_dict(),
                    })
                finally:
                    await client.close()
                assert services["n0"].spec.epoch == spec.epoch
                assert response.get("adopted") is False
            finally:
                for service in services.values():
                    await service.stop()

        asyncio.run(scenario())


class TestElasticOrchestration:
    def test_add_node_streams_then_flips_and_decommission_drains(
            self, corpus, tmp_path):
        """The whole lifecycle on one loop: load a 3-node cluster,
        grow it to four (data streams before the routing flip), drain
        an original member out, and verify nothing was lost and the
        quorum read pins the final epoch."""
        spec = make_spec(3, replication=2)
        spec_path = tmp_path / "cluster.json"
        spec.dump(spec_path)

        async def scenario():
            services = {}
            try:
                for node_id in spec.node_ids:
                    await start_node(services, tmp_path, spec,
                                     node_id).start()
                accepted = []
                for label, blob, upload_id in corpus:
                    member = spec.node(spec.routing_ring().owner(
                        route_key_of_blob(blob)
                    ))
                    client = ServiceClient(member.host, member.port)
                    try:
                        response = await client.upload(
                            label, blob, upload_id
                        )
                    finally:
                        await client.close()
                    assert response.get("status") == "accepted"
                    accepted.append(upload_id)

                (new_port,) = free_ports(1)

                async def start_new(joining_spec):
                    await start_node(
                        services, tmp_path, joining_spec, "n3"
                    ).start()

                added = await admin.add_node(
                    spec_path, "n3", "127.0.0.1", new_port,
                    start_callback=start_new,
                    poll_interval=0.1, timeout=30.0,
                )
                assert added["epochs"]["final"] == spec.epoch + 2
                assert 0.0 < added["range_span"] < 1.0
                final_add = ClusterSpec.load(spec_path)
                await wait_until(lambda: all(
                    s.spec.epoch == final_add.epoch
                    for s in services.values()
                ))
                assert services["n3"].status == "active"

                dropped = await admin.decommission(
                    spec_path, "n0", poll_interval=0.1, timeout=30.0,
                )
                assert dropped["epochs"]["final"] == final_add.epoch + 2
                final = ClusterSpec.load(spec_path)
                assert not final.has_node("n0")
                # The dropped node refused the final spec: pinned at
                # the draining epoch, one behind.
                assert services["n0"].spec.epoch == final.epoch - 1

                # Zero loss counting only surviving members.
                survivors = [services[n] for n in final.node_ids]
                for upload_id in accepted:
                    copies = sum(
                        1 for s in survivors
                        if s.store.entry_for_upload(upload_id)
                        is not None
                    )
                    assert copies >= final.replication

                # A quorum probe that still names n0 sees it stale.
                probe = ClusterSpec(
                    nodes=final.nodes + (spec.node("n0"),),
                    replication=final.replication,
                    epoch=final.epoch,
                )
                read = await admin.cluster_stats_quorum(probe)
                assert read["quorum"]["ok"] is True
                assert read["quorum"]["epoch"] == final.epoch
                assert "n0" in read["quorum"]["stale"]
                assert set(read["quorum"]["consistent"]) == set(
                    final.node_ids
                )
            finally:
                for service in services.values():
                    await service.stop()

        asyncio.run(scenario())
