"""Whole-node failure tolerance, end to end with real processes.

Runs the same scenario ``bugnet fleet-sim --nodes N`` ships: N ``bugnet
serve --cluster`` subprocesses, ring-routed load, a kill -9 of one node
mid-load, restart, convergence, and the cluster contract — zero
accepted-report loss, full replica sets restored, /metrics reconciling
with summed /stats.  This is the slowest test in the cluster suite and
the only one that exercises real process death (validation pool
orphans, freed ports, flock release).
"""

from repro.fleet.cluster.harness import run_cluster_sim, run_elasticity_sim


class TestKillMinusNine:
    def test_zero_loss_and_convergence_through_node_death(self, tmp_path):
        summary = run_cluster_sim(
            tmp_path, runs=10, nodes=3, replication=2,
            seed=5, corrupt=1, kill=True, concurrency=4,
            # workers=1 pins the validation-pool orphan regression: a
            # forked pool worker inherits the listening socket, and a
            # node whose "whole-node" kill missed it can never rebind
            # its port to rejoin.
            workers=1,
        )
        assert summary["lost"] == 0
        assert summary["killed_node"] == "n0"
        assert summary["reconciled"] is True
        assert summary["min_copies"] >= 2
        assert summary["accepted"] == summary["accepted_ids"]
        assert summary["accepted"] > 0
        assert summary["failed"] == 0

    def test_no_kill_run_replicates_everything(self, tmp_path):
        summary = run_cluster_sim(
            tmp_path, runs=8, nodes=3, replication=2,
            seed=9, corrupt=0, kill=False, concurrency=4, workers=0,
        )
        assert summary["lost"] == 0
        assert summary["killed_node"] is None
        assert summary["min_copies"] >= 2
        assert summary["reconciled"] is True
        # With nobody dying, fleet-wide resident copies are exactly
        # accepted * replication.
        assert sum(summary["per_node_reports"].values()) == \
            summary["accepted"] * 2


class TestElasticity:
    def test_topology_change_under_load_loses_nothing(self, tmp_path):
        """``fleet-sim --elastic`` with real processes: a fourth node
        joins mid-load (streams its ranges before the routing flip),
        an original member drains out, the e1-pinned load client keeps
        routing stale the whole time, and still every accepted report
        ends fully replicated at the final epoch."""
        summary = run_elasticity_sim(
            tmp_path, runs=12, replication=2, seed=3, corrupt=1,
            concurrency=4, workers=0,
        )
        assert summary["lost"] == 0
        assert summary["added_node"] == "n3"
        assert summary["decommissioned_node"] == "n0"
        assert summary["epochs"]["final"] == \
            summary["epochs"]["initial"] + 4
        assert summary["min_copies"] >= 2
        assert summary["reconciled"] is True
        assert summary["quorum"]["ok"] is True
        assert summary["stale_flagged"] is True
        assert "n0" not in summary["per_node_reports"]
