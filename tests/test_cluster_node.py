"""In-process tests for :class:`ClusterNodeService` and the cluster
admin/router layers.

All nodes of a test cluster run on one asyncio loop over real sockets
(loopback), with ``workers=0`` so validation stays in-process.  The
module-level Prometheus registry is process-global — these tests
assert on per-instance state (``cluster_counters``, ``stats()``, store
contents), never on ``/metrics``, which an in-process multi-node setup
cannot attribute to one node.
"""

import asyncio

import pytest

from repro.fleet.cluster.admin import (
    aggregate_metrics,
    aggregate_stats,
    cluster_buckets,
    reconcile,
)
from repro.fleet.cluster.harness import free_ports
from repro.fleet.cluster.node import ClusterNodeService
from repro.fleet.cluster.router import (
    RingRouter,
    RouterService,
    run_cluster_load_sim,
)
from repro.fleet.cluster.topology import ClusterSpec, NodeSpec
from repro.fleet.loadsim import ServiceClient, synthesize_corpus
from repro.fleet.service import ServiceConfig
from repro.fleet.validate import ResolverSpec, route_key_of_blob

CORPUS_BUGS = ("tidy-34132-2", "tidy-34132-3")


@pytest.fixture(scope="module")
def corpus():
    _programs, items, failures = synthesize_corpus(
        10, CORPUS_BUGS, seed=11, corrupt=0, intervals=(2_000, 5_000),
    )
    assert failures == 0
    return items


def make_spec(count, replication=2):
    ports = free_ports(count)
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(node_id=f"n{index}", host="127.0.0.1",
                     port=ports[index])
            for index in range(count)
        ),
        replication=replication,
    )


def run_cluster(tmp_path, coro_factory, nodes=3, replication=2,
                **node_kwargs):
    """Start N in-process cluster nodes, run the coroutine, stop all."""
    spec = make_spec(nodes, replication)
    node_kwargs.setdefault("gossip_interval", 0.05)
    node_kwargs.setdefault("anti_entropy_interval", 30.0)
    node_kwargs.setdefault("fail_after", 1.0)

    async def main():
        services = {}
        try:
            for member in spec.nodes:
                service = ClusterNodeService(
                    tmp_path / f"store-{member.node_id}", ResolverSpec(),
                    spec, member.node_id,
                    config=ServiceConfig(host=member.host,
                                         port=member.port, workers=0),
                    **node_kwargs,
                )
                await service.start()
                services[member.node_id] = service
            return await coro_factory(spec, services)
        finally:
            for service in services.values():
                await service.stop()

    return asyncio.run(main())


def owner_and_rest(spec, services, blob):
    """(preference-list nodes, a node outside it) for one blob."""
    route_key = route_key_of_blob(blob)
    assert route_key is not None
    any_node = next(iter(services.values()))
    prefs = any_node.ring.preference_list(route_key, spec.replication)
    outside = [n for n in spec.node_ids if n not in prefs]
    return prefs, outside


async def upload_to(spec, node_id, label, blob, upload_id=""):
    member = spec.node(node_id)
    client = ServiceClient(member.host, member.port)
    try:
        return await client.upload(label, blob, upload_id)
    finally:
        await client.close()


class TestReplication:
    def test_ack_waits_for_replica_set(self, corpus, tmp_path):
        label, blob, _uid = corpus[0]

        async def scenario(spec, services):
            prefs, _ = owner_and_rest(spec, services, blob)
            response = await upload_to(spec, prefs[0], label, blob, "up-1")
            assert response["status"] == "accepted"
            assert response["node"] == prefs[0]
            assert sorted(response["replicas"]) == sorted(prefs)
            # The report is durable on every replica before the ack.
            for node_id in prefs:
                entry = services[node_id].store.entry_for_upload("up-1")
                assert entry is not None
                assert entry.route_key == route_key_of_blob(blob)
            assert services[prefs[0]].cluster_counters[
                "replicated_out"] == len(prefs) - 1
            for node_id in prefs[1:]:
                assert services[node_id].cluster_counters[
                    "replicated_in"] == 1

        run_cluster(tmp_path, scenario)

    def test_replicate_op_is_idempotent(self, corpus, tmp_path):
        label, blob, _uid = corpus[0]

        async def scenario(spec, services):
            prefs, _ = owner_and_rest(spec, services, blob)
            await upload_to(spec, prefs[0], label, blob, "up-dup")
            replica = services[prefs[1]]
            entry = replica.store.entry_for_upload("up-dup")
            header = {
                "op": "replicate", "digest": entry.digest,
                "upload_id": "up-dup", "route_key": entry.route_key,
            }
            member = spec.node(prefs[1])
            client = ServiceClient(member.host, member.port)
            try:
                again = await client.request(header, blob)
            finally:
                await client.close()
            assert again == {"v": 1, "status": "ok", "duplicate": True,
                             "seq": entry.seq}
            assert len(replica.store) == 1

        run_cluster(tmp_path, scenario)


class TestForwarding:
    def test_misdirected_upload_proxied_to_owner(self, corpus, tmp_path):
        label, blob, _uid = corpus[0]

        async def scenario(spec, services):
            prefs, outside = owner_and_rest(spec, services, blob)
            if not outside:
                pytest.skip("every node is in this blob's replica set")
            response = await upload_to(
                spec, outside[0], label, blob, "up-fwd",
            )
            assert response["status"] == "accepted"
            assert response["via"] == outside[0]
            assert response["node"] in prefs
            assert services[outside[0]].cluster_counters["forwarded"] == 1
            # Served, not stored: the misdirected node holds nothing.
            assert services[outside[0]].store.entry_for_upload(
                "up-fwd") is None
            for node_id in prefs:
                assert services[node_id].store.entry_for_upload(
                    "up-fwd") is not None

        run_cluster(tmp_path, scenario)

    def test_same_blob_dedups_through_different_nodes(self, corpus,
                                                      tmp_path):
        """No client token at all: the synthesized blob-hash id makes a
        retry through a *different* node a duplicate, not a copy."""
        label, blob, _uid = corpus[0]

        async def scenario(spec, services):
            first = await upload_to(spec, spec.node_ids[0], label, blob)
            second = await upload_to(spec, spec.node_ids[1], label, blob)
            assert first["status"] == "accepted"
            assert not first["duplicate"]
            assert second["status"] == "accepted"
            assert second["duplicate"]

        run_cluster(tmp_path, scenario)


class TestFailureTolerance:
    def test_upload_succeeds_with_owner_down(self, corpus, tmp_path):
        label, blob, _uid = corpus[0]

        async def scenario(spec, services):
            prefs, _ = owner_and_rest(spec, services, blob)
            await services[prefs[0]].stop()
            survivors = [n for n in spec.node_ids if n != prefs[0]]
            # Wait for gossip to notice the death: only then does the
            # preference walk extend past the dead owner.
            deadline = asyncio.get_running_loop().time() + 8.0
            while asyncio.get_running_loop().time() < deadline:
                if all(prefs[0] not in services[n].gossip.alive()
                       for n in survivors):
                    break
                await asyncio.sleep(0.05)
            survivor = survivors[0]
            response = await upload_to(spec, survivor, label, blob, "up-ft")
            assert response["status"] == "accepted"
            assert prefs[0] not in response["replicas"]
            # The surviving preference walk still reached R nodes.
            assert len(response["replicas"]) == spec.replication
            for node_id in response["replicas"]:
                assert services[node_id].store.entry_for_upload(
                    "up-ft") is not None

        run_cluster(tmp_path, scenario)

    def test_gossip_detects_death_and_recovery(self, tmp_path):
        async def scenario(spec, services):
            async def wait_for(predicate, timeout=8.0):
                deadline = asyncio.get_running_loop().time() + timeout
                while asyncio.get_running_loop().time() < deadline:
                    if predicate():
                        return True
                    await asyncio.sleep(0.05)
                return False

            n0, n1 = services["n0"], services["n1"]
            assert await wait_for(
                lambda: n0.gossip.alive() == {"n0", "n1", "n2"}
            )
            await n1.stop()
            assert await wait_for(lambda: "n1" not in n0.gossip.alive())
            # Restart in place: same store, same port, fresh counters.
            revived = ClusterNodeService(
                tmp_path / "store-n1", ResolverSpec(), spec, "n1",
                config=ServiceConfig(host=spec.node("n1").host,
                                     port=spec.node("n1").port, workers=0),
                gossip_interval=0.05, anti_entropy_interval=30.0,
                fail_after=1.0,
            )
            await revived.start()
            services["n1"] = revived
            assert await wait_for(lambda: "n1" in n0.gossip.alive())

        run_cluster(tmp_path, scenario)

    def test_anti_entropy_pulls_missing_reports(self, corpus, tmp_path):
        """A node that was down during an upload catches up by pulling
        from live peers everything it should hold but does not."""
        label, blob, _uid = corpus[0]

        async def scenario(spec, services):
            prefs, _ = owner_and_rest(spec, services, blob)
            lagging = services[prefs[0]]
            await lagging.stop()
            survivor = next(n for n in spec.node_ids if n != prefs[0])
            await upload_to(spec, survivor, label, blob, "up-ae")
            revived = ClusterNodeService(
                tmp_path / f"store-{prefs[0]}", ResolverSpec(), spec,
                prefs[0],
                config=ServiceConfig(host=spec.node(prefs[0]).host,
                                     port=spec.node(prefs[0]).port,
                                     workers=0),
                gossip_interval=0.05, anti_entropy_interval=30.0,
                fail_after=1.0,
            )
            await revived.start()
            services[prefs[0]] = revived
            assert revived.store.entry_for_upload("up-ae") is None
            fetched = await revived.anti_entropy_round()
            assert fetched == 1
            assert revived.store.entry_for_upload("up-ae") is not None
            assert revived.cluster_counters["handoff_reports"] == 1
            # Idempotent: a second round finds nothing missing.
            assert await revived.anti_entropy_round() == 0

        run_cluster(tmp_path, scenario)


class TestClusterViews:
    def test_stats_carry_cluster_section(self, tmp_path):
        async def scenario(spec, services):
            member = spec.node("n0")
            client = ServiceClient(member.host, member.port)
            try:
                stats = await client.stats()
            finally:
                await client.close()
            cluster = stats["cluster"]
            assert cluster["node"] == "n0"
            assert cluster["replication"] == 2
            assert cluster["members"] == ["n0", "n1", "n2"]
            assert cluster["active"] == ["n0", "n1", "n2"]
            assert cluster["epoch"] == 1
            assert cluster["status"] == "active"
            assert set(cluster["counters"]) == {
                "forwarded", "replicated_out", "replicated_in",
                "gossip_rounds", "handoff_reports",
                "spec_updates", "stale_epochs",
            }

        run_cluster(tmp_path, scenario)

    def test_cluster_buckets_dedup_replica_copies(self, corpus, tmp_path):
        """Occurrence counts are distinct upload ids: replication puts
        each report on R nodes, and summing per-node counts would rank
        buckets by replication factor."""

        async def scenario(spec, services):
            by_signature = {}
            for index, (label, blob, _uid) in enumerate(corpus[:4]):
                response = await upload_to(
                    spec, spec.node_ids[0], label, blob, f"up-b{index}",
                )
                assert response["status"] == "accepted"
                by_signature.setdefault(response["signature"], set()).add(
                    f"up-b{index}"
                )
            merged = await cluster_buckets(spec)
            assert {b["signature"] for b in merged} == set(by_signature)
            for bucket in merged:
                wanted = by_signature[bucket["signature"]]
                assert bucket["count"] == len(wanted)
                assert set(bucket["upload_ids"]) == wanted
                assert bucket["representative"] is not None

        run_cluster(tmp_path, scenario)

    def test_aggregate_stats_sums_reachable_nodes(self):
        per_node = {
            "n0": {"queue_depth": 1,
                   "counters": {"received": 3, "accepted": 2,
                                "rejected": 1},
                   "cluster": {"counters": {"forwarded": 1}},
                   "store": {"reports": 2, "bytes": 100,
                             "evicted_reports": 0}},
            "n1": {"queue_depth": 0,
                   "counters": {"received": 2, "accepted": 2},
                   "cluster": {"counters": {"replicated_in": 2}},
                   "store": {"reports": 2, "bytes": 80,
                             "evicted_reports": 1}},
            "n2": None,
        }
        total = aggregate_stats(per_node)
        assert total["nodes"] == 3
        assert total["reachable"] == ["n0", "n1"]
        assert total["unreachable"] == ["n2"]
        assert total["counters"]["received"] == 5
        assert total["counters"]["accepted"] == 4
        assert total["cluster"]["forwarded"] == 1
        assert total["cluster"]["replicated_in"] == 2
        assert total["store"]["reports"] == 4
        assert total["store"]["bytes"] == 180

    def test_aggregate_metrics_and_reconcile(self):
        sample = {"n0": {"bugnet_service_received_total": {(): 3.0},
                         "bugnet_admission_total":
                             {(("outcome", "accepted"),): 2.0,
                              (("outcome", "rejected"),): 1.0},
                         "bugnet_store_reports": {(): 2.0}},
                  "n1": {"bugnet_service_received_total": {(): 2.0},
                         "bugnet_admission_total":
                             {(("outcome", "accepted"),): 2.0},
                         "bugnet_store_reports": {(): 2.0}},
                  "n2": None}
        merged = aggregate_metrics(sample)
        assert merged["bugnet_service_received_total"][()] == 5.0
        stats = {"counters": {"received": 5, "accepted": 4, "rejected": 1,
                              "retried": 0, "duplicates": 0},
                 "store": {"reports": 4}}
        assert reconcile(merged, stats) == []
        stats["counters"]["accepted"] = 3  # an increment path diverged
        mismatches = reconcile(merged, stats)
        assert len(mismatches) == 1
        assert "accepted" in mismatches[0]


class TestRingRouterAndProxy:
    def test_targets_rank_owners_then_live_then_dead(self, corpus):
        spec = make_spec(3, replication=2)
        router = RingRouter(spec)
        _label, blob, _uid = corpus[0]
        route_key = route_key_of_blob(blob)
        prefs = router.ring.preference_list(route_key, 2)
        targets = [m.node_id for m in router.targets_for(route_key)]
        assert targets[:2] == prefs
        assert set(targets) == set(spec.node_ids)
        router.mark_dead(prefs[0])
        degraded = [m.node_id for m in router.targets_for(route_key)]
        assert degraded[-1] == prefs[0]  # dead node demoted to last
        router.mark_alive(prefs[0])
        assert [m.node_id for m in router.targets_for(route_key)] == targets

    def test_ring_routed_load_sim_lands_on_owners(self, corpus, tmp_path):
        async def scenario(spec, services):
            report = await run_cluster_load_sim(
                spec, corpus, concurrency=4, max_attempts=30, seed=1,
            )
            assert len(report.accepted) == len(corpus)
            assert report.failed == []
            # Ring routing hit an owner directly every time: nothing
            # needed the server-side forwarding fallback.
            assert all(
                service.cluster_counters["forwarded"] == 0
                for service in services.values()
            )
            for _label, blob, upload_id in corpus:
                prefs, _ = owner_and_rest(spec, services, blob)
                for node_id in prefs:
                    assert services[node_id].store.entry_for_upload(
                        upload_id) is not None

        run_cluster(tmp_path, scenario)

    def test_router_service_proxies_uploads(self, corpus, tmp_path):
        label, blob, _uid = corpus[0]

        async def scenario(spec, services):
            proxy = RouterService(spec, port=0)
            host, port = await proxy.start()
            client = ServiceClient(host, port)
            try:
                response = await client.upload(label, blob, "up-proxy")
                assert response["status"] == "accepted"
                prefs, _ = owner_and_rest(spec, services, blob)
                assert response["routed_to"] == prefs[0]
                stats = await client.stats()
                assert stats["reachable"] == list(spec.node_ids)
            finally:
                await client.close()
                await proxy.stop()

        run_cluster(tmp_path, scenario)
