"""Tests for cluster membership, the node ring, and gossiped liveness.

The ring tests pin the placement *contract*: adding one node to an
N-node ring remaps roughly 1/N of the keyspace (consistent hashing's
whole point), and placement is a pure function of the bytes hashed —
two processes (or two releases) computing the owner of the same route
digest must agree, or replication sets silently diverge.
"""

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fleet.cluster.topology import (
    ClusterSpec,
    GossipState,
    NodeRing,
    NodeSpec,
)

SRC = Path(__file__).resolve().parents[1] / "src"


def members(count):
    return tuple(
        NodeSpec(node_id=f"n{index}", host="127.0.0.1", port=7000 + index)
        for index in range(count)
    )


def route_keys(count):
    """Deterministic synthetic route digests."""
    return [
        hashlib.sha256(f"route-{index}".encode()).hexdigest()
        for index in range(count)
    ]


class TestClusterSpec:
    def test_round_trips_through_json_file(self, tmp_path):
        spec = ClusterSpec(nodes=members(3), replication=2)
        spec.dump(tmp_path / "cluster.json")
        loaded = ClusterSpec.load(tmp_path / "cluster.json")
        assert loaded == spec
        assert loaded.node_ids == ("n0", "n1", "n2")

    def test_rejects_empty_duplicate_and_bad_replication(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(nodes=())
        twins = (members(1)[0], members(1)[0])
        with pytest.raises(ValueError, match="duplicate node ids"):
            ClusterSpec(nodes=twins, replication=1)
        with pytest.raises(ValueError, match="out of range"):
            ClusterSpec(nodes=members(2), replication=3)
        with pytest.raises(ValueError, match="out of range"):
            ClusterSpec(nodes=members(2), replication=0)

    def test_node_lookup_and_peers(self):
        spec = ClusterSpec(nodes=members(3), replication=2)
        assert spec.node("n1").port == 7001
        assert tuple(n.node_id for n in spec.peers_of("n1")) == ("n0", "n2")
        with pytest.raises(KeyError):
            spec.node("n9")


class TestNodeRing:
    def test_owner_is_deterministic_and_a_member(self):
        ring = NodeRing(("n0", "n1", "n2"))
        for key in route_keys(50):
            owner = ring.owner(key)
            assert owner in ("n0", "n1", "n2")
            assert ring.owner(key) == owner

    def test_preference_list_distinct_and_starts_at_owner(self):
        ring = NodeRing(("n0", "n1", "n2", "n3"))
        for key in route_keys(50):
            prefs = ring.preference_list(key, 3)
            assert len(prefs) == 3
            assert len(set(prefs)) == 3
            assert prefs[0] == ring.owner(key)

    def test_preference_list_clamps_to_node_count(self):
        ring = NodeRing(("n0", "n1"))
        assert len(ring.preference_list(route_keys(1)[0], 5)) == 2

    def test_alive_filter_skips_dead_but_keeps_walking(self):
        ring = NodeRing(("n0", "n1", "n2", "n3"))
        for key in route_keys(50):
            static = ring.preference_list(key, 2)
            dead = static[0]
            degraded = ring.preference_list(
                key, 2, alive={"n0", "n1", "n2", "n3"} - {dead}
            )
            # The walk continues past the dead owner: the set still has
            # two members and never contains the dead one.
            assert len(degraded) == 2
            assert dead not in degraded
            assert degraded[0] == static[1]

    def test_single_node_owns_everything(self):
        ring = NodeRing(("solo",))
        assert all(ring.owner(key) == "solo" for key in route_keys(20))

    def test_adding_one_node_remaps_about_one_nth(self):
        """The satellite property: growing N -> N+1 moves ~1/(N+1) of
        keys to the new node and nothing between old nodes."""
        keys = route_keys(2000)
        before = NodeRing(tuple(f"n{i}" for i in range(6)))
        after = NodeRing(tuple(f"n{i}" for i in range(7)))
        moved = 0
        for key in keys:
            old, new = before.owner(key), after.owner(key)
            if old != new:
                moved += 1
                # Consistent hashing only ever moves keys *to* the
                # added node, never shuffles between survivors.
                assert new == "n6"
        fraction = moved / len(keys)
        # Expect ~1/7 ~= 0.143; allow generous sampling slack but stay
        # far below the ~0.857 a mod-N scheme would remap.
        assert fraction <= (1 / 7) + 0.08
        assert fraction > 0.02

    def test_owner_stable_across_processes(self):
        """Placement is pure sha256 over pinned strings: a fresh
        interpreter must compute identical owners (no per-process hash
        randomization, no dict-order dependence)."""
        node_ids = ("n0", "n1", "n2", "n3", "n4")
        keys = route_keys(64)
        mine = [NodeRing(node_ids).owner(key) for key in keys]
        script = (
            "import json, sys\n"
            "from repro.fleet.cluster.topology import NodeRing\n"
            "node_ids, keys = json.loads(sys.stdin.read())\n"
            "ring = NodeRing(tuple(node_ids))\n"
            "print(json.dumps([ring.owner(k) for k in keys]))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([list(node_ids), keys]),
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert json.loads(result.stdout) == mine

    def test_shard_of_stable_across_processes(self, tmp_path):
        """The store's shard ring placement (which is *persisted* — a
        divergence here corrupts stores) recomputes identically in a
        fresh interpreter."""
        from repro.fleet.store import ReportStore

        digests = route_keys(64)
        store = ReportStore(tmp_path / "store", num_shards=8)
        mine = [store.shard_of(digest) for digest in digests]
        script = (
            "import json, sys\n"
            "from repro.fleet.store import ReportStore\n"
            "root, digests = json.loads(sys.stdin.read())\n"
            "store = ReportStore(root)\n"
            "print(json.dumps([store.shard_of(d) for d in digests]))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([str(tmp_path / "store"), digests]),
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert json.loads(result.stdout) == mine

    def test_route_digest_pinned_value(self):
        """The route digest formula is a cross-version wire contract;
        pin one literal so an accidental change cannot slip through."""
        from repro.fleet.signature import route_digest

        expected = hashlib.sha256(
            b"route-v1\x00prog\x00memory\x00"
            + (0x1234).to_bytes(8, "little")
        ).hexdigest()
        assert route_digest("prog", "memory", 0x1234) == expected
        # Deterministic across calls and insensitive to nothing else.
        assert route_digest("prog", "memory", 0x1234) == expected

    def test_store_route_token_matches_ring_key_of(self):
        """``store.route_token`` duplicates ``NodeRing.key_of`` so the
        store never imports the cluster package; pin them in lockstep
        — a drift would make range-filtered anti-entropy stream the
        wrong reports."""
        from repro.fleet import store

        for key in route_keys(32):
            assert store.route_token(key) == NodeRing.key_of(key)


class TestGossip:
    def fresh(self, fail_after=2.0):
        return GossipState(
            self_id="n0", node_ids=("n0", "n1", "n2"),
            fail_after=fail_after,
        )

    def test_everyone_alive_at_start_and_self_always(self):
        gossip = self.fresh()
        assert gossip.alive(now=0.0) >= {"n0"}
        # Far future: peers expired, self immortal.
        assert gossip.alive(now=1e9) == {"n0"}

    def test_observe_merges_by_max_and_is_proof_of_life(self):
        gossip = self.fresh()
        gossip.observe({"n1": 5}, now=100.0)
        assert gossip.counters["n1"] == 5
        assert gossip.is_alive("n1", now=101.0)
        # A stale (not advanced) counter is not proof of life.
        gossip.observe({"n1": 5}, now=200.0)
        assert not gossip.is_alive("n1", now=200.0)
        # Unknown nodes are ignored: membership is the seed list.
        gossip.observe({"intruder": 99}, now=100.0)
        assert "intruder" not in gossip.counters

    def test_touch_revives_a_restarted_peer(self):
        """A restarted node's counter resets below the merged max, so
        observe() alone would never revive it; direct contact does."""
        gossip = self.fresh()
        gossip.observe({"n1": 50}, now=100.0)
        assert not gossip.is_alive("n1", now=200.0)
        gossip.observe({"n1": 1}, now=200.0)  # restarted, counter reset
        assert not gossip.is_alive("n1", now=200.0)
        gossip.touch("n1", now=200.0)
        assert gossip.is_alive("n1", now=201.0)
        assert gossip.counters["n1"] == 50  # merged view keeps the max

    def test_mark_dead_is_immediate(self):
        gossip = self.fresh()
        gossip.observe({"n2": 1}, now=100.0)
        assert gossip.is_alive("n2", now=100.5)
        gossip.mark_dead("n2")
        assert not gossip.is_alive("n2")

    def test_beat_advances_own_counter(self):
        gossip = self.fresh()
        gossip.beat()
        gossip.beat()
        assert gossip.snapshot()["n0"] == 2
