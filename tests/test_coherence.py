"""Unit tests for the directory MSI protocol."""

from repro.cache.coherence import Directory
from repro.cache.hierarchy import FirstLoadHierarchy
from repro.common.config import CacheConfig

L1 = CacheConfig(size=512, associativity=2, block_size=64)
L2 = CacheConfig(size=2048, associativity=4, block_size=64)


def machine(cores=2):
    directory = Directory()
    hierarchies = []
    for core in range(cores):
        h = FirstLoadHierarchy(L1, L2, core_id=core)
        directory.attach(core, h)
        hierarchies.append(h)
    return directory, hierarchies


class TestDirectory:
    def test_private_read_no_replies(self):
        directory, _ = machine()
        assert directory.access(0, 10, is_store=False) == []

    def test_private_write_no_replies(self):
        directory, _ = machine()
        assert directory.access(0, 10, is_store=True) == []

    def test_write_invalidates_sharers(self):
        directory, hierarchies = machine()
        hierarchies[1].access(10 * 64, is_store=False)
        directory.access(1, 10, is_store=False)
        repliers = directory.access(0, 10, is_store=True)
        assert repliers == [1]
        assert not hierarchies[1].holds(10)

    def test_read_downgrades_owner(self):
        directory, hierarchies = machine()
        hierarchies[1].access(10 * 64, is_store=True)
        directory.access(1, 10, is_store=True)
        repliers = directory.access(0, 10, is_store=False)
        assert repliers == [1]
        assert not hierarchies[1].holds_modified(10)
        # The block stays resident in the remote cache (M->S).
        assert hierarchies[1].holds(10)

    def test_read_read_sharing_no_replies(self):
        directory, _ = machine()
        directory.access(0, 10, is_store=False)
        assert directory.access(1, 10, is_store=False) == []
        assert directory.holders(10) == {0, 1}

    def test_write_after_write_transfers_ownership(self):
        directory, _ = machine()
        directory.access(0, 10, is_store=True)
        repliers = directory.access(1, 10, is_store=True)
        assert repliers == [0]
        assert directory.owner(10) == 1

    def test_own_upgrade_no_self_reply(self):
        directory, _ = machine()
        directory.access(0, 10, is_store=False)
        assert directory.access(0, 10, is_store=True) == []

    def test_eviction_removes_holder(self):
        directory, _ = machine()
        directory.access(0, 10, is_store=True)
        directory.evicted(0, 10)
        assert directory.holders(10) == set()
        assert directory.owner(10) is None

    def test_single_writer_invariant(self):
        directory, hierarchies = machine(3)
        for core in range(3):
            hierarchies[core].access(7 * 64, is_store=False)
            directory.access(core, 7, is_store=False)
        # The writing core's own access follows the directory grant,
        # exactly as TracedMemoryInterface orders them.
        directory.access(0, 7, is_store=True)
        hierarchies[0].access(7 * 64, is_store=True)
        modified = [c for c, h in enumerate(hierarchies) if h.holds_modified(7)]
        assert modified == [0]

    def test_multiple_invalidations_reply_each(self):
        directory, hierarchies = machine(3)
        for core in (1, 2):
            hierarchies[core].access(7 * 64, is_store=False)
            directory.access(core, 7, is_store=False)
        repliers = directory.access(0, 7, is_store=True)
        assert sorted(repliers) == [1, 2]


class TestDMAInvalidation:
    def test_dma_clears_all_copies(self):
        directory, hierarchies = machine()
        for core in (0, 1):
            hierarchies[core].access(5 * 64, is_store=False)
            directory.access(core, 5, is_store=False)
        count = directory.dma_write([5])
        assert count == 2
        assert not hierarchies[0].holds(5)
        assert not hierarchies[1].holds(5)
        assert directory.holders(5) == set()

    def test_dma_uncached_block_noop(self):
        directory, _ = machine()
        assert directory.dma_write([99]) == 0

    def test_dma_forces_relog(self):
        # The paper's §4.5 guarantee: DMA-modified data re-logs on the
        # next application load because the bits went away with the block.
        directory, hierarchies = machine()
        hierarchies[0].access(5 * 64, is_store=False)
        directory.access(0, 5, is_store=False)
        assert hierarchies[0].access(5 * 64, is_store=False) is False
        directory.dma_write([5])
        assert hierarchies[0].access(5 * 64, is_store=False) is True
