"""Unit tests for the configuration dataclasses and derived widths."""

import pytest

from repro.common.config import (
    BugNetConfig,
    CacheConfig,
    DictionaryConfig,
    MachineConfig,
)


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size=16 * 1024, associativity=4, block_size=64)
        assert config.num_sets == 64

    def test_words_per_block(self):
        assert CacheConfig(size=4096, associativity=1, block_size=64).words_per_block == 16

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size=4096, associativity=1, block_size=48)

    def test_uneven_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, associativity=3, block_size=64)


class TestDictionaryConfig:
    def test_default_is_paper_design_point(self):
        config = DictionaryConfig()
        assert config.entries == 64
        assert config.counter_bits == 3

    def test_index_bits_for_64_entries(self):
        # "we use 6 bits to represent the position" (paper §4.3.1)
        assert DictionaryConfig(entries=64).index_bits == 6

    def test_index_bits_for_1024_entries(self):
        assert DictionaryConfig(entries=1024).index_bits == 10

    def test_counter_max(self):
        assert DictionaryConfig().counter_max == 7

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            DictionaryConfig(entries=0)


class TestBugNetConfig:
    def test_default_interval_is_ten_million(self):
        assert BugNetConfig().checkpoint_interval == 10_000_000

    def test_full_lcount_bits_tracks_interval(self):
        assert BugNetConfig(checkpoint_interval=10_000_000).full_lcount_bits == 24
        assert BugNetConfig(checkpoint_interval=100_000).full_lcount_bits == 17

    def test_reduced_lcount_default_five_bits(self):
        assert BugNetConfig().reduced_lcount_bits == 5

    def test_tid_bits(self):
        assert BugNetConfig(max_live_threads=64).tid_bits == 6

    def test_cid_bits(self):
        assert BugNetConfig(max_resident_checkpoints=256).cid_bits == 8

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            BugNetConfig(checkpoint_interval=0)

    def test_bad_reduced_bits_rejected(self):
        with pytest.raises(ValueError):
            BugNetConfig(reduced_lcount_bits=0)


class TestMachineConfig:
    def test_defaults(self):
        config = MachineConfig()
        assert config.num_cores == 1
        assert config.l1.size == 16 * 1024
        assert config.l2.size == 256 * 1024

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=0)

    def test_mismatched_block_sizes_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(
                l1=CacheConfig(size=4096, associativity=2, block_size=32),
                l2=CacheConfig(size=65536, associativity=4, block_size=64),
            )

    def test_negative_timer_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(timer_interval=-1)
