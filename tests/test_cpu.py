"""Unit tests for the BN32 CPU: instruction semantics and faults."""

import pytest

from repro.arch.assembler import assemble
from repro.arch.cpu import CPU, DirectMemoryInterface
from repro.arch.loader import load_program
from repro.arch.memory import Memory
from repro.common.errors import ArithmeticFault, Fault, InstructionFault, MemoryFault


def run(source, max_steps=10_000, setup=None):
    """Assemble and run until exit syscall; returns the CPU."""
    program = assemble(source)
    memory = Memory()
    sp = load_program(program, memory)
    cpu = CPU(program, DirectMemoryInterface(memory))
    cpu.regs["sp"] = sp

    def handler(c):
        if c.regs["v0"] == 1:
            c.halted = True
            c.exit_code = c.regs["a0"]

    cpu.syscall_handler = handler
    if setup:
        setup(cpu, memory)
    for _ in range(max_steps):
        if cpu.halted:
            break
        cpu.step()
    assert cpu.halted, "program did not exit"
    return cpu


def result_of(body, max_steps=10_000):
    """Run a snippet that leaves its result in a0 and exits."""
    return run(f"main:\n{body}\n li v0, 1\n syscall", max_steps).exit_code


class TestALU:
    def test_add_wraps(self):
        assert result_of("li t0, 0x7FFFFFFF\n addi t0, t0, 1\n move a0, t0") == 0x80000000

    def test_sub(self):
        assert result_of("li t0, 5\n li t1, 9\n sub a0, t0, t1") == 0xFFFFFFFC

    def test_mul_signed(self):
        assert result_of("li t0, -3\n li t1, 4\n mul a0, t0, t1") == 0xFFFFFFF4

    def test_div_truncates_toward_zero(self):
        assert result_of("li t0, -7\n li t1, 2\n div a0, t0, t1") == 0xFFFFFFFD  # -3

    def test_rem_sign_follows_dividend(self):
        assert result_of("li t0, -7\n li t1, 2\n rem a0, t0, t1") == 0xFFFFFFFF  # -1

    def test_divu(self):
        assert result_of("li t0, -1\n li t1, 2\n divu a0, t0, t1") == 0x7FFFFFFF

    def test_remu(self):
        assert result_of("li t0, 10\n li t1, 3\n remu a0, t0, t1") == 1

    def test_logic_ops(self):
        assert result_of("li t0, 0xF0\n li t1, 0x0F\n or a0, t0, t1") == 0xFF
        assert result_of("li t0, 0xF0\n li t1, 0xFF\n and a0, t0, t1") == 0xF0
        assert result_of("li t0, 0xFF\n li t1, 0x0F\n xor a0, t0, t1") == 0xF0

    def test_nor(self):
        assert result_of("li t0, 0\n li t1, 0\n nor a0, t0, t1") == 0xFFFFFFFF

    def test_shifts_immediate(self):
        assert result_of("li t0, 1\n sll a0, t0, 31") == 0x80000000
        assert result_of("li t0, 0x80000000\n srl a0, t0, 31") == 1
        assert result_of("li t0, 0x80000000\n sra a0, t0, 31") == 0xFFFFFFFF

    def test_shifts_variable_mask_5_bits(self):
        assert result_of("li t0, 1\n li t1, 33\n sllv a0, t0, t1") == 2

    def test_slt_signed_vs_unsigned(self):
        assert result_of("li t0, -1\n li t1, 1\n slt a0, t0, t1") == 1
        assert result_of("li t0, -1\n li t1, 1\n sltu a0, t0, t1") == 0

    def test_slti(self):
        assert result_of("li t0, -5\n slti a0, t0, -4") == 1

    def test_lui(self):
        assert result_of("lui a0, 0xABCD") == 0xABCD0000

    def test_writes_to_r0_discarded(self):
        assert result_of("li t0, 7\n add zero, t0, t0\n move a0, zero") == 0


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        assert result_of(
            "li t0, 2\n li a0, 0\n beq t0, t0, over\n li a0, 99\nover: nop"
        ) == 0

    def test_signed_branches(self):
        assert result_of(
            "li t0, -1\n li t1, 1\n li a0, 0\n blt t0, t1, ok\n li a0, 9\nok: nop"
        ) == 0

    def test_unsigned_branches(self):
        assert result_of(
            "li t0, -1\n li t1, 1\n li a0, 0\n bltu t0, t1, bad\n b ok\nbad: li a0, 9\nok: nop"
        ) == 0

    def test_jal_links_return_address(self):
        assert result_of(
            "jal fn\n b done\nfn: move a0, ra\n jr ra\ndone: nop",
            max_steps=100,
        ) != 0

    def test_call_return(self):
        assert result_of(
            "li a0, 0\n jal inc\n jal inc\n b done\ninc: addi a0, a0, 1\n jr ra\ndone: nop"
        ) == 2

    def test_jalr_custom_link(self):
        source = """
main:
    la   t0, fn
    jalr s0, t0
    b    done
fn:
    move a0, s0
    jr   s0
done:
    nop
    li v0, 1
    syscall
"""
        cpu = run(source)
        assert cpu.exit_code != 0

    def test_loop_counts(self):
        assert result_of(
            "li t0, 0\nloop: addi t0, t0, 1\n blt t0, 10, loop\n move a0, t0"
        ) == 10


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        source = """
.data
buf: .space 16
.text
main:
    la  t0, buf
    li  t1, 77
    sw  t1, 4(t0)
    lw  a0, 4(t0)
    li  v0, 1
    syscall
"""
        assert run(source).exit_code == 77

    def test_store_load_via_data_label(self):
        source = """
.data
slot: .word 0
.text
main:
    li  t0, 1234
    sw  t0, slot
    lw  a0, slot
    li  v0, 1
    syscall
"""
        assert run(source).exit_code == 1234

    def test_negative_offsets(self):
        source = """
main:
    li  t0, 55
    sw  t0, -8(sp)
    lw  a0, -8(sp)
    li  v0, 1
    syscall
"""
        assert run(source).exit_code == 55


class TestFaults:
    def expect_fault(self, source, exc, steps=100):
        program = assemble(source)
        memory = Memory()
        load_program(program, memory)
        cpu = CPU(program, DirectMemoryInterface(memory))
        with pytest.raises(exc):
            for _ in range(steps):
                cpu.step()

    def test_divide_by_zero(self):
        self.expect_fault("main: li t0, 1\n li t1, 0\n div t2, t0, t1",
                          ArithmeticFault)

    def test_divu_by_zero(self):
        self.expect_fault("main: li t0, 1\n li t1, 0\n divu t2, t0, t1",
                          ArithmeticFault)

    def test_null_load(self):
        self.expect_fault("main: li t0, 0\n lw t1, 0(t0)", MemoryFault)

    def test_wild_store(self):
        self.expect_fault("main: li t0, 0x40\n sw t0, 0(t0)", MemoryFault)

    def test_wild_jump(self):
        self.expect_fault("main: li t0, 0x41414140\n jr t0", InstructionFault)

    def test_fall_off_code_end(self):
        self.expect_fault("main: nop", InstructionFault)

    def test_break_traps(self):
        self.expect_fault("main: break", InstructionFault)

    def test_syscall_without_kernel_faults(self):
        self.expect_fault("main: syscall", Fault)

    def test_pc_preserved_on_fault(self):
        program = assemble("main: nop\n li t0, 0\n lw t1, 0(t0)")
        memory = Memory()
        load_program(program, memory)
        cpu = CPU(program, DirectMemoryInterface(memory))
        faulting_pc = program.pc_of("main") + 8  # li is one instruction
        with pytest.raises(MemoryFault):
            for _ in range(5):
                cpu.step()
        assert cpu.pc == faulting_pc


class TestContext:
    def test_context_roundtrip(self):
        program = assemble("main: li t0, 5\n nop\n nop")
        cpu = CPU(program, DirectMemoryInterface(Memory()))
        cpu.step()
        pc, regs = cpu.context()
        cpu.step()
        cpu.restore_context(pc, regs)
        assert cpu.pc == pc
        assert cpu.regs["t0"] == 5

    def test_inst_count_increments(self):
        program = assemble("main: nop\n nop\n nop")
        cpu = CPU(program, DirectMemoryInterface(Memory()))
        cpu.step()
        cpu.step()
        assert cpu.inst_count == 2
