"""Tests for the replay debugger."""

import pytest

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay.debugger import ReplayDebugger
from repro.replay.replayer import Replayer

SOURCE = """
.data
counter: .word 0
scratch: .space 64
.text
main:
    li   s0, 0
    li   s1, 10
loop:
    lw   t0, counter
    addi t0, t0, 1
    sw   t0, counter
    sll  t1, s0, 2
    la   t2, scratch
    add  t2, t2, t1
    sw   t0, 0(t2)
    addi s0, s0, 1
    blt  s0, s1, loop
finish:
    lw   a0, counter
    li   v0, 1
    syscall
"""


@pytest.fixture(scope="module")
def debugger_setup():
    program = assemble(SOURCE, name="debug-demo")
    machine = Machine(program, MachineConfig(),
                      BugNetConfig(checkpoint_interval=30))
    machine.spawn()
    result = machine.run()
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    return program, machine, result, flls


@pytest.fixture
def debugger(debugger_setup):
    program, machine, _result, flls = debugger_setup
    return ReplayDebugger(program, machine.bugnet, flls)


class TestNavigation:
    def test_window_length(self, debugger_setup, debugger):
        _, _, result, _ = debugger_setup
        assert debugger.length == result.instructions[0]

    def test_step_advances(self, debugger):
        assert debugger.position == 0
        debugger.step()
        assert debugger.position == 1

    def test_reverse_step(self, debugger):
        debugger.step()
        debugger.step()
        debugger.reverse_step()
        assert debugger.position == 1

    def test_reverse_at_start_stays(self, debugger):
        debugger.reverse_step()
        assert debugger.position == 0

    def test_seek_and_bounds(self, debugger):
        debugger.seek(5)
        assert debugger.position == 5
        with pytest.raises(IndexError):
            debugger.seek(debugger.length + 1)

    def test_run_to_end(self, debugger):
        stop = debugger.run()
        assert stop.kind == "end"
        assert debugger.at_end

    def test_where_mentions_pc_and_line(self, debugger):
        text = debugger.where()
        assert "pc=0x" in text
        assert "line" in text


class TestBreakpoints:
    def test_break_on_label(self, debugger):
        debugger.add_breakpoint("finish")
        stop = debugger.run()
        assert stop.kind == "breakpoint"
        event = debugger.current_event()
        assert event.pc == debugger.program.pc_of("finish")

    def test_break_hits_every_iteration(self, debugger):
        loop_pc = debugger.add_breakpoint("loop")
        hits = 0
        while True:
            stop = debugger.run()
            if stop.kind != "breakpoint":
                break
            hits += 1
            debugger.step()  # move past the breakpoint
        assert hits == 10

    def test_run_back_to_breakpoint(self, debugger):
        debugger.add_breakpoint("loop")
        debugger.run()
        debugger.step()
        first_position = debugger.position
        debugger.run()  # second iteration
        stop = debugger.run_back()
        assert stop.kind == "breakpoint"
        assert debugger.position < first_position + 20


class TestWatchpoints:
    def test_watchpoint_on_counter(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.add_watchpoint(counter)
        stop = debugger.run()
        assert stop.kind == "watchpoint"
        event = debugger.last_event()
        assert event.load == (counter, 0)  # first read sees 0

    def test_watchpoint_sees_all_accesses(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.add_watchpoint(counter)
        kinds = []
        while True:
            stop = debugger.run()
            if stop.kind != "watchpoint":
                break
            event = debugger.last_event()
            kinds.append("store" if event.store else "load")
        # 10 iterations of load+store, plus the final load.
        assert kinds.count("load") == 11
        assert kinds.count("store") == 10

    def test_reverse_watchpoint(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.add_watchpoint(counter)
        debugger.run()
        debugger.run()
        position_after_two = debugger.position
        stop = debugger.run_back()
        assert stop.kind == "watchpoint"
        assert debugger.position < position_after_two


class TestInspection:
    def test_memory_at_tracks_stores(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.run()  # to end
        assert debugger.memory_at(counter) == 10

    def test_memory_at_untouched_is_none(self, debugger):
        assert debugger.memory_at(0x66660000) is None

    def test_access_history_ordered(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        history = debugger.access_history(counter)
        values = [value for _, kind, value in history if kind == "store"]
        assert values == list(range(1, 11))

    def test_last_writer(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.run()
        writer = debugger.last_writer(counter)
        assert writer.store == (counter, 10)

    def test_registers_at_interval_start(self, debugger_setup, debugger):
        _, _, _, flls = debugger_setup
        starts = debugger._interval_starts
        debugger.seek(starts[1])
        assert debugger.registers() == flls[1].header.regs

    def test_registers_mid_interval(self, debugger):
        # After `li s0, 0; li s1, 10`, s1 holds 10.
        debugger.seek(2)
        regs = debugger.registers()
        assert regs[17] == 10  # s1 = r17

    def test_registers_at_window_end(self, debugger):
        debugger.run()
        regs = debugger.registers()
        assert regs[4] == 10  # a0 holds the final counter value

    def test_empty_window_rejected(self, debugger_setup):
        program, machine, *_ = debugger_setup
        with pytest.raises(ValueError):
            ReplayDebugger(program, machine.bugnet, [])


class TestSizedWatchpoints:
    def test_byte_watch_catches_covering_word_store(self, debugger_setup,
                                                    debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        # Watch a single *interior* byte: the old addr & ~3 masking
        # would have rounded this to the word — the point is that the
        # word store overlaps the byte range and must hit.
        debugger.add_watchpoint(counter + 1, size=1)
        stop = debugger.run()
        assert stop.kind == "watchpoint"
        assert f"[{counter + 1:#x},{counter + 2:#x})" in stop.detail

    def test_adjacent_word_does_not_hit(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        # One byte past the counter word: stores to `counter` no longer
        # overlap; only `scratch` traffic could (scratch starts there).
        debugger.add_watchpoint(counter + 4, size=1)
        stop = debugger.run()
        if stop.kind == "watchpoint":
            event = debugger.last_event()
            addr = (event.store or event.load)[0]
            assert addr != counter
        else:
            assert stop.kind == "end"

    def test_range_watch_spans_words(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        scratch = program.symbols["scratch"]
        debugger.add_watchpoint(scratch, size=16)   # words 0..3
        hits = set()
        while True:
            stop = debugger.run()
            if stop.kind != "watchpoint":
                break
            hits.add((debugger.last_event().store
                      or debugger.last_event().load)[0])
        assert hits == {scratch, scratch + 4, scratch + 8, scratch + 12}

    def test_bad_size_rejected(self, debugger):
        with pytest.raises(ValueError):
            debugger.add_watchpoint(0x1000, size=0)


class TestRegistersCache:
    def test_repeated_calls_do_not_rereplay(self, debugger, monkeypatch):
        calls = {"n": 0}
        original = Replayer.replay_interval

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Replayer, "replay_interval", counting)
        debugger.seek(7)
        first = debugger.registers()
        after_first = calls["n"]
        assert after_first > 0
        for _ in range(5):
            assert debugger.registers() == first
        assert calls["n"] == after_first      # cache hit: no replay at all

    def test_navigation_invalidates(self, debugger, monkeypatch):
        calls = {"n": 0}
        original = Replayer.replay_interval

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Replayer, "replay_interval", counting)
        debugger.seek(7)
        debugger.registers()
        marker = calls["n"]
        debugger.step()
        debugger.registers()                  # different position: recompute
        assert calls["n"] > marker
        debugger.reverse_step()
        # Values stay correct across the cache.
        assert debugger.registers() == debugger._reconstruct_registers()


class TestWhy:
    def test_why_register_chain(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.run()   # to the window end
        text = debugger.why("a0")
        # a0 holds the final counter value, loaded at `finish`.
        assert "loaded" in text
        assert f"{counter:#010x}" in text

    def test_why_address_names_last_store(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.run()
        text = debugger.why(counter)
        assert "store" in text
        assert "<counter>" in text

    def test_why_untouched_address(self, debugger):
        text = debugger.why(0x66660000)
        assert "unlogged memory" in text

    def test_ddg_adopts_debugger_index(self, debugger):
        # The access index built at init is shared with the DDG, not
        # rebuilt.
        assert debugger.ddg().index is debugger._index

    def test_why_does_not_rereplay(self, debugger, monkeypatch):
        calls = {"n": 0}
        original = Replayer.replay_interval

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Replayer, "replay_interval", counting)
        debugger.run()
        debugger.why("a0")
        debugger.why("t0")
        assert calls["n"] == 0   # DDG built from the init-time replay


class TestIndexEquivalence:
    """The forensics access index must answer exactly like the linear
    scans it replaced (satellite regression on randomized programs)."""

    @pytest.mark.parametrize("seed", [2, 13, 31])
    def test_matches_linear_scans(self, seed):
        from repro.workloads.randprog import random_program

        program = random_program(seed)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=40))
        machine.spawn()
        result = machine.run()
        assert not result.crashed
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        debugger = ReplayDebugger(program, machine.bugnet, flls)
        events = debugger.events

        def naive_memory_at(addr, position):
            addr &= ~3
            value = None
            for event in events[:position]:
                if event.store is not None and event.store[0] == addr:
                    value = event.store[1]
                elif event.load is not None and event.load[0] == addr:
                    value = event.load[1]
            return value

        def naive_access_history(addr):
            addr &= ~3
            history = []
            for index, event in enumerate(events):
                if event.store is not None and event.store[0] == addr:
                    history.append((index, "store", event.store[1]))
                elif event.load is not None and event.load[0] == addr:
                    history.append((index, "load", event.load[1]))
            return history

        def naive_last_writer(addr, position):
            addr &= ~3
            for event in reversed(events[:position]):
                if event.store is not None and event.store[0] == addr:
                    return event
            return None

        touched = sorted({a[0] for e in events
                          for a in (e.load, e.store) if a is not None})
        sample = touched[:: max(len(touched) // 8, 1)] + [0x66660000]
        positions = sorted({0, 1, len(events) // 3, len(events) // 2,
                            len(events) - 1, len(events)})
        for addr in sample:
            assert debugger.access_history(addr) == naive_access_history(addr)
            for position in positions:
                debugger.seek(position)
                assert debugger.memory_at(addr) == naive_memory_at(
                    addr, position)
                assert debugger.last_writer(addr) is naive_last_writer(
                    addr, position)
