"""Tests for the replay debugger."""

import pytest

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay.debugger import ReplayDebugger

SOURCE = """
.data
counter: .word 0
scratch: .space 64
.text
main:
    li   s0, 0
    li   s1, 10
loop:
    lw   t0, counter
    addi t0, t0, 1
    sw   t0, counter
    sll  t1, s0, 2
    la   t2, scratch
    add  t2, t2, t1
    sw   t0, 0(t2)
    addi s0, s0, 1
    blt  s0, s1, loop
finish:
    lw   a0, counter
    li   v0, 1
    syscall
"""


@pytest.fixture(scope="module")
def debugger_setup():
    program = assemble(SOURCE, name="debug-demo")
    machine = Machine(program, MachineConfig(),
                      BugNetConfig(checkpoint_interval=30))
    machine.spawn()
    result = machine.run()
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    return program, machine, result, flls


@pytest.fixture
def debugger(debugger_setup):
    program, machine, _result, flls = debugger_setup
    return ReplayDebugger(program, machine.bugnet, flls)


class TestNavigation:
    def test_window_length(self, debugger_setup, debugger):
        _, _, result, _ = debugger_setup
        assert debugger.length == result.instructions[0]

    def test_step_advances(self, debugger):
        assert debugger.position == 0
        debugger.step()
        assert debugger.position == 1

    def test_reverse_step(self, debugger):
        debugger.step()
        debugger.step()
        debugger.reverse_step()
        assert debugger.position == 1

    def test_reverse_at_start_stays(self, debugger):
        debugger.reverse_step()
        assert debugger.position == 0

    def test_seek_and_bounds(self, debugger):
        debugger.seek(5)
        assert debugger.position == 5
        with pytest.raises(IndexError):
            debugger.seek(debugger.length + 1)

    def test_run_to_end(self, debugger):
        stop = debugger.run()
        assert stop.kind == "end"
        assert debugger.at_end

    def test_where_mentions_pc_and_line(self, debugger):
        text = debugger.where()
        assert "pc=0x" in text
        assert "line" in text


class TestBreakpoints:
    def test_break_on_label(self, debugger):
        debugger.add_breakpoint("finish")
        stop = debugger.run()
        assert stop.kind == "breakpoint"
        event = debugger.current_event()
        assert event.pc == debugger.program.pc_of("finish")

    def test_break_hits_every_iteration(self, debugger):
        loop_pc = debugger.add_breakpoint("loop")
        hits = 0
        while True:
            stop = debugger.run()
            if stop.kind != "breakpoint":
                break
            hits += 1
            debugger.step()  # move past the breakpoint
        assert hits == 10

    def test_run_back_to_breakpoint(self, debugger):
        debugger.add_breakpoint("loop")
        debugger.run()
        debugger.step()
        first_position = debugger.position
        debugger.run()  # second iteration
        stop = debugger.run_back()
        assert stop.kind == "breakpoint"
        assert debugger.position < first_position + 20


class TestWatchpoints:
    def test_watchpoint_on_counter(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.add_watchpoint(counter)
        stop = debugger.run()
        assert stop.kind == "watchpoint"
        event = debugger.last_event()
        assert event.load == (counter, 0)  # first read sees 0

    def test_watchpoint_sees_all_accesses(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.add_watchpoint(counter)
        kinds = []
        while True:
            stop = debugger.run()
            if stop.kind != "watchpoint":
                break
            event = debugger.last_event()
            kinds.append("store" if event.store else "load")
        # 10 iterations of load+store, plus the final load.
        assert kinds.count("load") == 11
        assert kinds.count("store") == 10

    def test_reverse_watchpoint(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.add_watchpoint(counter)
        debugger.run()
        debugger.run()
        position_after_two = debugger.position
        stop = debugger.run_back()
        assert stop.kind == "watchpoint"
        assert debugger.position < position_after_two


class TestInspection:
    def test_memory_at_tracks_stores(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.run()  # to end
        assert debugger.memory_at(counter) == 10

    def test_memory_at_untouched_is_none(self, debugger):
        assert debugger.memory_at(0x66660000) is None

    def test_access_history_ordered(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        history = debugger.access_history(counter)
        values = [value for _, kind, value in history if kind == "store"]
        assert values == list(range(1, 11))

    def test_last_writer(self, debugger_setup, debugger):
        program, *_ = debugger_setup
        counter = program.symbols["counter"]
        debugger.run()
        writer = debugger.last_writer(counter)
        assert writer.store == (counter, 10)

    def test_registers_at_interval_start(self, debugger_setup, debugger):
        _, _, _, flls = debugger_setup
        starts = debugger._interval_starts
        debugger.seek(starts[1])
        assert debugger.registers() == flls[1].header.regs

    def test_registers_mid_interval(self, debugger):
        # After `li s0, 0; li s1, 10`, s1 holds 10.
        debugger.seek(2)
        regs = debugger.registers()
        assert regs[17] == 10  # s1 = r17

    def test_registers_at_window_end(self, debugger):
        debugger.run()
        regs = debugger.registers()
        assert regs[4] == 10  # a0 holds the final counter value

    def test_empty_window_rejected(self, debugger_setup):
        program, machine, *_ = debugger_setup
        with pytest.raises(ValueError):
            ReplayDebugger(program, machine.bugnet, [])
