"""Recording determinism: identical runs produce identical logs.

Reproducibility of the *recording* itself matters for a simulator used
in research: same program + same seed ⇒ byte-identical FLLs, MRLs and
crash shipments.  These tests pin that down, including across machine
configurations that must NOT affect architectural behaviour.
"""

from repro.arch import assemble
from repro.common.config import BugNetConfig, CacheConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay import Replayer
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug
from repro.workloads.randprog import random_program


def record_logs(program, bugnet=None, config=None):
    machine = Machine(program, config or MachineConfig(),
                      bugnet or BugNetConfig(checkpoint_interval=100))
    machine.spawn()
    result = machine.run()
    return machine, result


def fll_blob(result):
    return b"".join(
        cp.fll.payload for cp in result.log_store.checkpoints(0)
    )


class TestRecordingDeterminism:
    def test_identical_runs_identical_logs(self):
        program = random_program(1234)
        _, a = record_logs(program)
        _, b = record_logs(program)
        assert fll_blob(a) == fll_blob(b)
        assert [cp.fll.header for cp in a.log_store.checkpoints(0)] == \
            [cp.fll.header for cp in b.log_store.checkpoints(0)]

    def test_crash_shipment_bytes_identical(self):
        bug = BUGS_BY_NAME["tar-1.13.25"]
        config = BugNetConfig(checkpoint_interval=2_000)
        run_a = run_bug(bug, bugnet=config, record=True)
        run_b = run_bug(bug, bugnet=config, record=True)
        assert dump_crash_report(run_a.result.crash, config) == \
            dump_crash_report(run_b.result.crash, config)

    def test_cache_geometry_changes_logs_not_behaviour(self):
        """Different cache sizes change WHAT is logged (eviction relogs)
        but never the replayed execution."""
        program = random_program(77)
        big = MachineConfig()
        tiny = MachineConfig(
            l1=CacheConfig(size=512, associativity=2, block_size=64),
            l2=CacheConfig(size=1024, associativity=2, block_size=64),
        )
        machine_a, result_a = record_logs(program, config=big)
        machine_b, result_b = record_logs(program, config=tiny)
        assert result_a.console_values == result_b.console_values
        events_a = [
            (e.pc, e.load, e.store)
            for r in Replayer(program, machine_a.bugnet).replay(
                [cp.fll for cp in result_a.log_store.checkpoints(0)])
            for e in r.events
        ]
        events_b = [
            (e.pc, e.load, e.store)
            for r in Replayer(program, machine_b.bugnet).replay(
                [cp.fll for cp in result_b.log_store.checkpoints(0)])
            for e in r.events
        ]
        assert events_a == events_b

    def test_tiny_cache_logs_at_least_as_much(self):
        """Eviction clears first-load bits, so a tiny cache re-logs."""
        source = """
.data
big: .space 16384
.text
main:
    li   s0, 0
    la   s1, big
loop:
    andi t0, s0, 4095
    sll  t0, t0, 2
    add  t0, s1, t0
    lw   t1, 0(t0)
    addi s0, s0, 1
    blt  s0, 8192, loop
    li   v0, 1
    syscall
"""
        program = assemble(source)
        tiny = MachineConfig(
            l1=CacheConfig(size=512, associativity=2, block_size=64),
            l2=CacheConfig(size=1024, associativity=2, block_size=64),
        )
        machine_big, _ = record_logs(
            program, bugnet=BugNetConfig(checkpoint_interval=1_000_000))
        machine_tiny, _ = record_logs(
            program, bugnet=BugNetConfig(checkpoint_interval=1_000_000),
            config=tiny)
        assert machine_tiny.recorders[0].loads_logged > \
            machine_big.recorders[0].loads_logged

    def test_dictionary_size_changes_bits_not_records(self):
        from repro.common.config import DictionaryConfig

        program = random_program(555)
        small_dict = BugNetConfig(checkpoint_interval=100,
                                  dictionary=DictionaryConfig(entries=8))
        big_dict = BugNetConfig(checkpoint_interval=100,
                                dictionary=DictionaryConfig(entries=256))
        _, result_small = record_logs(program, bugnet=small_dict)
        _, result_big = record_logs(program, bugnet=big_dict)
        records_small = sum(cp.fll.num_records
                            for cp in result_small.log_store.checkpoints(0))
        records_big = sum(cp.fll.num_records
                          for cp in result_big.log_store.checkpoints(0))
        assert records_small == records_big  # what is logged is cache-driven
