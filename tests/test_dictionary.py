"""Unit + property tests for the dictionary compressor (paper §4.3.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DictionaryConfig
from repro.tracing.dictionary import DictionaryCompressor


def tiny(entries=4, counter_bits=3):
    return DictionaryCompressor(DictionaryConfig(entries=entries,
                                                 counter_bits=counter_bits))


class TestBasicBehaviour:
    def test_empty_lookup_misses(self):
        assert tiny().lookup(42) is None

    def test_miss_inserts(self):
        d = tiny()
        d.update(42)
        assert d.lookup(42) is not None

    def test_empty_slots_fill_bottom_up(self):
        # Ties on counter 0 break toward the lowest position (largest
        # index), so fresh values enter at the bottom of the table.
        d = tiny(entries=4)
        d.update(10)
        assert d.lookup(10) == 3
        d.update(20)
        assert d.lookup(20) == 2

    def test_hit_increments_counter(self):
        d = tiny()
        d.update(10)
        d.update(10)
        table = d.table()
        position = d.lookup(10)
        assert table[position][1] >= 2

    def test_frequent_value_percolates_to_top(self):
        d = tiny(entries=4)
        for value in (1, 2, 3, 4):
            d.update(value)
        for _ in range(10):
            d.update(4)
        assert d.lookup(4) == 0

    def test_swap_requires_counter_geq_above(self):
        d = tiny(entries=4)
        d.update(1)           # pos 3, counter 1
        d.update(2)           # pos 2, counter 1
        # One hit on value 1: counter 2 >= value 2's counter 1 -> swap.
        d.update(1)
        assert d.lookup(1) == 2
        assert d.lookup(2) == 3

    def test_counter_saturates(self):
        d = tiny(entries=2, counter_bits=2)
        d.update(5)
        for _ in range(20):
            d.update(5)
        position = d.lookup(5)
        assert d.table()[position][1] == 3  # 2-bit saturating counter

    def test_replacement_evicts_smallest_counter(self):
        d = tiny(entries=2)
        d.update(1)
        d.update(2)
        d.update(1)   # 1's counter now higher
        d.update(3)   # must evict 2
        assert d.lookup(2) is None
        assert d.lookup(1) is not None
        assert d.lookup(3) is not None

    def test_replacement_tie_breaks_low_position(self):
        d = tiny(entries=3)
        d.update(1)   # pos 2
        d.update(2)   # pos 1
        d.update(3)   # pos 0; all counters 1
        d.update(4)   # tie: replace lowest position (index 2)
        assert d.lookup(1) is None

    def test_reset_empties(self):
        d = tiny()
        d.update(7)
        d.reset()
        assert d.lookup(7) is None

    def test_value_at_roundtrip(self):
        d = tiny()
        d.update(123)
        assert d.value_at(d.lookup(123)) == 123

    def test_value_at_empty_raises(self):
        import pytest

        with pytest.raises(LookupError):
            tiny().value_at(0)

    def test_hit_rate(self):
        d = tiny()
        d.update(1)
        d.update(1)
        d.update(2)
        assert abs(d.hit_rate - 1 / 3) < 1e-9


class _ReferenceDictionary:
    """Straight-line O(n) reference implementation of §4.3.1."""

    def __init__(self, entries, counter_max):
        self.values = [None] * entries
        self.counters = [0] * entries
        self.counter_max = counter_max

    def lookup(self, value):
        try:
            return self.values.index(value)
        except ValueError:
            return None

    def update(self, value):
        pos = self.lookup(value)
        if pos is not None:
            if self.counters[pos] < self.counter_max:
                self.counters[pos] += 1
            if pos > 0 and self.counters[pos] >= self.counters[pos - 1]:
                for array in (self.values, self.counters):
                    array[pos], array[pos - 1] = array[pos - 1], array[pos]
        else:
            smallest = min(self.counters)
            victim = max(
                i for i, c in enumerate(self.counters) if c == smallest
            )
            self.values[victim] = value
            self.counters[victim] = 1


@settings(max_examples=200, deadline=None)
@given(
    entries=st.sampled_from([2, 4, 8, 16]),
    stream=st.lists(st.integers(min_value=0, max_value=30), max_size=300),
)
def test_matches_reference_implementation(entries, stream):
    """The heap-accelerated dictionary behaves exactly like the naive one."""
    fast = DictionaryCompressor(DictionaryConfig(entries=entries))
    slow = _ReferenceDictionary(entries, fast.counter_max)
    for value in stream:
        assert fast.lookup(value) == slow.lookup(value)
        fast.update(value)
        slow.update(value)
    assert [v for v, _ in fast.table()] == slow.values
    assert [c for _, c in fast.table()] == slow.counters


@settings(max_examples=100, deadline=None)
@given(stream=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                       max_size=200))
def test_two_instances_stay_identical(stream):
    """Recorder and replayer dictionaries fed the same loads agree.

    This is the determinism contract that makes 6-bit encodings safe.
    """
    recorder_side = DictionaryCompressor()
    replayer_side = DictionaryCompressor()
    for value in stream:
        index = recorder_side.lookup(value)
        if index is not None:
            assert replayer_side.value_at(index) == value
        recorder_side.update(value)
        replayer_side.update(value)
    assert recorder_side.table() == replayer_side.table()


@settings(max_examples=50, deadline=None)
@given(stream=st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                       max_size=100))
def test_lookup_is_pure(stream):
    """lookup() must not mutate state (encode reads pre-update state)."""
    d = DictionaryCompressor(DictionaryConfig(entries=4))
    for value in stream:
        before = d.table()
        d.lookup(value)
        assert d.table() == before
        d.update(value)


@settings(max_examples=100, deadline=None)
@given(
    entries=st.sampled_from([1, 2, 4, 8]),
    counter_bits=st.sampled_from([1, 2, 3]),
    stream=st.lists(st.integers(min_value=0, max_value=40), max_size=300),
)
def test_lookup_update_equals_lookup_then_update(entries, counter_bits, stream):
    """The fused fast-path call is exactly lookup() followed by update()."""
    config = DictionaryConfig(entries=entries, counter_bits=counter_bits)
    fused = DictionaryCompressor(config)
    split = DictionaryCompressor(config)
    for value in stream:
        expected = split.lookup(value)
        split.update(value)
        assert fused.lookup_update(value) == expected
    assert fused.table() == split.table()
    assert (fused.hits, fused.misses) == (split.hits, split.misses)


class TestAdversarialStreams:
    """Replacement-policy edge cases that lock in the replay contract."""

    def _check_masks(self, d):
        """The O(1) victim index must always mirror the live counters."""
        masks = d._masks
        for counter, mask in enumerate(masks):
            for pos in range(d.size):
                expected = d._counters[pos] == counter
                assert bool(mask & (1 << pos)) == expected

    def test_saturated_counters_tie_break(self):
        # Saturate every entry, then force misses: victims must walk the
        # table bottom-up (largest index first) since all counters tie.
        d = tiny(entries=4, counter_bits=2)
        for value in (1, 2, 3, 4):
            for _ in range(10):
                d.update(value)
        assert all(counter == 3 for _, counter in d.table())
        d.update(100)
        assert d.lookup(100) == 3  # replaced the lowest-ranked entry
        self._check_masks(d)

    def test_all_miss_churn_state_stays_bounded(self):
        # A pathological stream that never hits: the seed implementation
        # grew a heap entry per miss; auxiliary state must stay at
        # exactly counter_max + 1 masks of table-size bits.
        d = tiny(entries=8, counter_bits=3)
        for value in range(10_000):
            d.update(value)
        assert len(d._masks) == d.counter_max + 1
        assert all(mask < (1 << d.size) for mask in d._masks)
        self._check_masks(d)
        assert d.misses == 10_000

    def test_all_miss_churn_matches_reference(self):
        d = tiny(entries=4)
        reference = _ReferenceDictionary(4, d.counter_max)
        for value in range(500):
            d.update(value)
            reference.update(value)
        assert [v for v, _ in d.table()] == reference.values
        assert [c for _, c in d.table()] == reference.counters

    def test_single_entry_table(self):
        d = tiny(entries=1)
        d.update(5)
        assert d.lookup(5) == 0
        d.update(5)
        assert d.table()[0][1] == 2  # hit increments, no swap possible
        d.update(9)                  # miss always evicts the only slot
        assert d.lookup(5) is None
        assert d.lookup(9) == 0
        assert d.table()[0][1] == 1
        self._check_masks(d)

    def test_hit_saturation_then_churn_matches_reference(self):
        # Alternate saturating hits with evicting misses so counters
        # rise, saturate, and drop back to 1 — exercising every mask
        # transition in the O(1) victim structure.
        d = tiny(entries=4, counter_bits=2)
        reference = _ReferenceDictionary(4, d.counter_max)
        stream = ([7] * 10 + [8] * 10 + list(range(20, 30))
                  + [7, 8] * 5 + list(range(40, 60)))
        for value in stream:
            assert d.lookup(value) == reference.lookup(value)
            d.update(value)
            reference.update(value)
            self._check_masks(d)
        assert [v for v, _ in d.table()] == reference.values
