"""Tests for the disassembler: readable and reassemblable."""

import pytest

from repro.arch.assembler import assemble
from repro.arch.disasm import disassemble, listing, symbol_map


class TestDisassemble:
    def roundtrip(self, source_line):
        """Assemble → disassemble → assemble again → same instruction."""
        program = assemble(f"main: {source_line}")
        original = program.instructions[0]
        text = disassemble(original)
        again = assemble(f"main: {text}").instructions[0]
        assert again == original, f"{source_line!r} -> {text!r}"

    @pytest.mark.parametrize("line", [
        "add t0, t1, t2",
        "sub s0, s1, s2",
        "mul v0, a0, a1",
        "and t3, t4, t5",
        "nor ra, sp, fp",
        "slt t0, t1, t2",
        "sltu t0, t1, t2",
        "sllv t0, t1, t2",
        "addi t0, t1, -42",
        "andi t0, t1, 255",
        "slti t0, t1, 100",
        "sll t0, t1, 5",
        "sra t0, t1, 31",
        "lui t0, 0xABCD",
        "lw t0, 8(sp)",
        "sw t1, -12(fp)",
        "jr ra",
        "syscall",
        "nop",
    ])
    def test_roundtrip(self, line):
        self.roundtrip(line)

    def test_branch_with_symbols(self):
        program = assemble("main: beq t0, t1, main")
        symbols = symbol_map(program)
        assert disassemble(program.instructions[0], symbols) == \
            "beq t0, t1, main"

    def test_branch_without_symbols_uses_hex(self):
        program = assemble("main: beq t0, t1, main")
        assert "0x400000" in disassemble(program.instructions[0])

    def test_jal_symbolic(self):
        program = assemble("main: jal main")
        assert disassemble(program.instructions[0], symbol_map(program)) == \
            "jal main"

    def test_jalr_renders_both_regs(self):
        program = assemble("main: jalr s0, t0")
        assert disassemble(program.instructions[0]) == "jalr s0, t0"


class TestListing:
    SOURCE = """
main:
    li  t0, 1
loop:
    addi t0, t0, 1
    blt  t0, 5, loop
    li  v0, 1
    syscall
"""

    def test_labels_interleaved(self):
        program = assemble(self.SOURCE)
        text = listing(program)
        assert "main:" in text
        assert "loop:" in text
        assert "blt t0, at, loop" in text  # immediate was materialized

    def test_start_and_count(self):
        program = assemble(self.SOURCE)
        text = listing(program, start=program.pc_of("loop"), count=2)
        assert "loop:" in text
        assert text.count("0x004000") == 2

    def test_stops_at_code_end(self):
        program = assemble("main: nop")
        text = listing(program, count=100)
        assert len(text.splitlines()) == 2  # label + one instruction


def rebuild_source(program):
    """Disassemble every instruction back to assembly, with the
    program's labels re-emitted at their addresses so branch and jump
    targets resolve to the same immediates."""
    from repro.arch.isa import index_to_pc

    symbols = symbol_map(program)
    lines = []
    for index, ins in enumerate(program.instructions):
        pc = index_to_pc(index)
        if pc in symbols:
            lines.append(f"{symbols[pc]}:")
        lines.append(f"    {disassemble(ins, symbols)}")
    return "\n".join(lines) + "\n"


class TestCorpusRoundTrip:
    """Whole-program round trips: disassemble → reassemble must be
    bit-identical for every bug-suite and random program."""

    def roundtrip(self, program):
        again = assemble(rebuild_source(program))
        assert again.instructions == program.instructions

    def test_bug_suite(self):
        from repro.workloads.bugs import BUG_SUITE

        for bug in BUG_SUITE:
            self.roundtrip(bug.program())

    def test_clean_suite(self):
        from repro.workloads.clean import CLEAN_SUITE

        for clean in CLEAN_SUITE:
            self.roundtrip(clean.program())

    @pytest.mark.parametrize("seed", range(10))
    def test_random_programs(self, seed):
        from repro.workloads.randprog import random_program

        self.roundtrip(random_program(seed))
