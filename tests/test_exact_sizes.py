"""Exact bit-accounting tests: FLL sizes computed by hand.

The log-size experiments are only as credible as the encoder's
accounting, so these tests pin exact bit counts for crafted programs
whose first-load patterns are fully predictable.
"""

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine

INTERVAL = 1_000
CONFIG = BugNetConfig(checkpoint_interval=INTERVAL)
HEADER_BITS = (16 + CONFIG.tid_bits + CONFIG.cid_bits + 64 + 32
               + 32 * 32 + 1)
FOOTER_BITS = CONFIG.ic_bits + 1  # end_ic + fault flag (no fault pc)


def record(source):
    program = assemble(source)
    machine = Machine(program, MachineConfig(), CONFIG)
    machine.spawn()
    result = machine.run()
    return machine, result


class TestExactAccounting:
    def test_no_loads_header_only(self):
        source = """
main:
    li  t0, 1
    li  t1, 2
    add t2, t0, t1
    li  v0, 1
    syscall
"""
        _, result = record(source)
        checkpoints = result.log_store.checkpoints(0)
        assert len(checkpoints) == 1
        fll = checkpoints[0].fll
        assert fll.num_records == 0
        assert fll.payload_bits == 0
        assert fll.bit_size(CONFIG) == HEADER_BITS + FOOTER_BITS

    def test_one_uncompressible_load(self):
        # One load of a value that cannot hit the (empty) dictionary and
        # zero skipped loads: LC-Type(1)+5 + LV-Type(1)+32 = 39 bits.
        source = """
.data
slot: .word 0xDEADBEEF
.text
main:
    lw  t0, slot
    li  v0, 1
    syscall
"""
        _, result = record(source)
        fll = result.log_store.checkpoints(0)[0].fll
        assert fll.num_records == 1
        assert fll.payload_bits == 39

    def test_repeat_load_encodes_as_dictionary_hit(self):
        # Second first-load of the SAME value (different word): the
        # dictionary holds it, so the record is 1+5+1+6 = 13 bits.
        source = """
.data
a: .word 0xDEADBEEF
b: .word 0xDEADBEEF
.text
main:
    lw  t0, a
    lw  t1, b
    li  v0, 1
    syscall
"""
        _, result = record(source)
        fll = result.log_store.checkpoints(0)[0].fll
        assert fll.num_records == 2
        assert fll.payload_bits == 39 + 13

    def test_skipped_loads_in_lcount(self):
        # Load a, then 3 repeat loads of a, then first-load of b:
        # record 2 has L-Count 3 (reduced form).
        source = """
.data
a: .word 5
b: .word 0x12345678
.text
main:
    lw  t0, a
    lw  t0, a
    lw  t0, a
    lw  t0, a
    lw  t1, b
    li  v0, 1
    syscall
"""
        _, result = record(source)
        fll = result.log_store.checkpoints(0)[0].fll
        assert fll.num_records == 2
        # Record 1: 39 bits (value 5 misses the empty dictionary).
        # Record 2: value 0x12345678 missed (dictionary holds only 5),
        # L-Count=3 reduced: 1+5+1+32 = 39 bits.
        assert fll.payload_bits == 78

    def test_full_lcount_form(self):
        # 40 repeat loads between two logged ones: L-Count 40 >= 32
        # forces the full form: 1 + ic_bits + 1 + 32.
        source = """
.data
a: .word 5
b: .word 0x12345678
.text
main:
    lw  t0, a
    li  s0, 0
rep:
    lw  t0, a
    addi s0, s0, 1
    blt  s0, 40, rep
    lw  t1, b
    li  v0, 1
    syscall
"""
        _, result = record(source)
        fll = result.log_store.checkpoints(0)[0].fll
        assert fll.num_records == 2
        expected_second = 1 + CONFIG.ic_bits + 1 + 32
        assert fll.payload_bits == 39 + expected_second

    def test_store_then_load_logs_nothing(self):
        source = """
.data
a: .space 4
.text
main:
    li  t0, 7
    sw  t0, a
    lw  t1, a
    li  v0, 1
    syscall
"""
        _, result = record(source)
        fll = result.log_store.checkpoints(0)[0].fll
        assert fll.num_records == 0

    def test_byte_size_matches_bit_size(self):
        source = """
.data
a: .word 1
.text
main:
    lw  t0, a
    li  v0, 1
    syscall
"""
        _, result = record(source)
        fll = result.log_store.checkpoints(0)[0].fll
        assert fll.byte_size(CONFIG) == (fll.bit_size(CONFIG) + 7) // 8

    def test_logstore_accounts_exact_bytes(self):
        source = """
.data
a: .word 1
.text
main:
    lw  t0, a
    li  v0, 1
    syscall
"""
        _, result = record(source)
        store = result.log_store
        checkpoint = store.checkpoints(0)[0]
        assert store.total_bytes == (
            checkpoint.fll.byte_size(CONFIG) + checkpoint.mrl.byte_size(CONFIG)
        )
