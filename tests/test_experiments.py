"""Shape tests for the experiment drivers (reduced-size configurations).

The benchmarks run the full-size versions; here we assert the *shapes*
the paper reports hold on smaller runs: who wins, monotonicity, and the
direction of every trend.
"""

from repro.analysis import experiments as exp
from repro.analysis.report import Series, Table, format_bytes
from repro.workloads.bugs import BUGS_BY_NAME

FAST_WORKLOADS = ("art", "gzip", "mcf")


class TestReportHelpers:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024 * 1024) == "3.00 MB"

    def test_table_renders_aligned(self):
        table = Table("T", ["a", "bb"])
        table.add("xxx", 1)
        text = table.render()
        assert "T" in text and "xxx" in text

    def test_series_average(self):
        series = Series("S", "x", "y")
        series.set_point("a", 1, 10.0)
        series.set_point("b", 1, 30.0)
        assert series.average() == [20.0]

    def test_series_render_handles_missing(self):
        series = Series("S", "x", "y")
        series.set_point("a", 1, 1.0)
        series.set_point("b", 2, 2.0)
        assert "-" in series.render()


class TestTable1Driver:
    def test_windows_reported(self):
        bugs = [BUGS_BY_NAME["tidy-34132-2"], BUGS_BY_NAME["bc-1.06"]]
        table, rows = exp.experiment_table1(bugs)
        assert len(rows) == 2
        assert all(row.run.crashed for row in rows)
        text = table.render()
        assert "bc-1.06" in text


class TestFig2Driver:
    def test_fll_sizes_positive(self):
        bugs = [BUGS_BY_NAME["bc-1.06"], BUGS_BY_NAME["gnuplot-3.7.1-1"]]
        table, sizes = exp.experiment_fig2(bugs, checkpoint_interval=10_000)
        assert all(size > 0 for size in sizes.values())

    def test_small_windows_need_small_flls(self):
        # Paper: "FLL sizes for several programs are below 1KB" for the
        # sub-thousand-instruction windows.
        bugs = [BUGS_BY_NAME["tidy-34132-2"]]
        _, sizes = exp.experiment_fig2(bugs, checkpoint_interval=10_000)
        assert sizes["tidy-34132-2"] < 1024


class TestFig3Driver:
    def test_fll_size_decreases_with_interval(self):
        series = exp.experiment_fig3(
            window=60_000, intervals=(500, 5_000, 50_000),
            workloads=FAST_WORKLOADS,
        )
        for name in FAST_WORKLOADS:
            line = series.lines[name]
            assert line[0] > line[-1], f"{name}: {line}"

    def test_average_line_present(self):
        series = exp.experiment_fig3(
            window=30_000, intervals=(1_000, 10_000), workloads=("art",),
        )
        assert "Avg" in series.lines


class TestFig4Driver:
    def test_fll_size_grows_with_window(self):
        series = exp.experiment_fig4(
            windows=(20_000, 80_000), interval=10_000,
            workloads=FAST_WORKLOADS,
        )
        for name in FAST_WORKLOADS:
            line = series.lines[name]
            assert line[1] > line[0]

    def test_growth_roughly_linear(self):
        # 4x the window should give roughly 2.5x-6x the log (the paper's
        # fig 4 is near-linear on the log scale).
        series = exp.experiment_fig4(
            windows=(20_000, 80_000), interval=10_000, workloads=("gzip",),
        )
        low, high = series.lines["gzip"]
        assert 2.0 <= high / low <= 8.0


class TestFig56Driver:
    def test_hit_rate_monotone_in_size(self):
        hit, ratio = exp.experiment_fig5_fig6(
            window=60_000, interval=20_000, sizes=(8, 64, 1024),
            workloads=FAST_WORKLOADS,
        )
        for name in FAST_WORKLOADS:
            line = hit.lines[name]
            assert line[0] <= line[1] <= line[2]

    def test_dictionary_of_64_compresses_meaningfully(self):
        # Paper: "A dictionary of size 64 is capable of compressing 50%
        # of the values on average".  These three personalities are the
        # best compressors, so assert a generous qualitative band; the
        # full seven-benchmark average lands near 50 (see EXPERIMENTS.md).
        hit, _ = exp.experiment_fig5_fig6(
            window=60_000, interval=20_000, sizes=(64,),
            workloads=FAST_WORKLOADS,
        )
        avg = hit.lines["Avg"][0]
        assert 30.0 <= avg <= 90.0

    def test_compression_ratio_improves_with_size(self):
        _, ratio = exp.experiment_fig5_fig6(
            window=60_000, interval=20_000, sizes=(8, 1024),
            workloads=("art", "gzip"),
        )
        for name in ("art", "gzip"):
            line = ratio.lines[name]
            assert line[1] >= line[0] >= 1.0


class TestTable2Driver:
    def test_bugnet_grows_with_window(self):
        table, data = exp.experiment_table2(
            small_window=20_000, large_window=100_000, interval=10_000,
            workloads=("gzip",),
        )
        assert data.bugnet_large_window > data.bugnet_small_window

    def test_fdr_checkpoint_logs_nonzero(self):
        _, data = exp.experiment_table2(
            small_window=20_000, large_window=60_000, interval=10_000,
            workloads=("art",),
        )
        assert data.fdr_checkpoint_logs > 0
        assert data.fdr_compressed_checkpoint > 0

    def test_full_system_comparison_bugnet_wins(self):
        table, data = exp.experiment_table2_full_system("tidy-34132-2")
        assert data["fdr"].shipped_total > data["bugnet"]


class TestTable3Driver:
    def test_totals_match_paper(self):
        table, data = exp.experiment_table3()
        bugnet_kb = data["bugnet"].total_kb
        fdr_kb = data["fdr"].total_kb
        assert 48.0 <= bugnet_kb <= 49.0     # paper: 48 KB
        assert fdr_kb == 1416.0              # paper: 1416 KB
        assert fdr_kb / bugnet_kb > 25


class TestOverheadDriver:
    def test_overhead_below_paper_bound(self):
        table, results = exp.experiment_overhead(window=100_000,
                                                 interval=20_000)
        for name, overhead in results.items():
            assert overhead < 0.01, f"{name}: {overhead}"
