"""Differential tests: the batched recording fast path is bit-identical.

The fast path (``BitWriter.extend`` / ``FLLWriter.append_many`` /
``BugNetRecorder.note_loads`` / the TraceEngine segment batching / the
Machine single-core burst loop) must emit **exactly** the bytes the
per-instruction reference path emits — the FLL is a contract between
recorder and replayer, so "almost the same" is corruption.  Every test
here runs both paths on the same input and compares payloads bit for
bit.
"""

import random

import pytest

from repro.cache.hierarchy import FirstLoadHierarchy
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.tracing.backing import LogStore
from repro.tracing.fll import FLLHeader, FLLWriter
from repro.tracing.recorder import BugNetRecorder
from repro.workloads.randprog import random_program
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import TraceEngine

ZERO_REGS = tuple([0] * 32)


def assert_stores_identical(store_a: LogStore, store_b: LogStore) -> None:
    """Every resident (FLL, MRL) pair matches bit for bit."""
    assert store_a.threads() == store_b.threads()
    for tid in store_a.threads():
        checkpoints_a = store_a.checkpoints(tid)
        checkpoints_b = store_b.checkpoints(tid)
        assert len(checkpoints_a) == len(checkpoints_b)
        for a, b in zip(checkpoints_a, checkpoints_b):
            assert a.fll.header == b.fll.header
            assert a.fll.payload == b.fll.payload
            assert a.fll.payload_bits == b.fll.payload_bits
            assert a.fll.num_records == b.fll.num_records
            assert a.fll.end_ic == b.fll.end_ic
            assert a.fll.fault_pc == b.fll.fault_pc
            assert a.fll.raw_payload_bits == b.fll.raw_payload_bits
            assert a.mrl.payload == b.mrl.payload
            assert a.mrl.num_entries == b.mrl.num_entries
            assert a.reason == b.reason


class TestWriterEquivalence:
    def _writer(self, interval=1000):
        config = BugNetConfig(checkpoint_interval=interval)
        header = FLLHeader(pid=1, tid=0, cid=0, timestamp=0, pc=0,
                           regs=ZERO_REGS)
        return config, FLLWriter(config, header)

    @pytest.mark.parametrize("seed", range(5))
    def test_append_many_matches_append(self, seed):
        rng = random.Random(seed)
        records = []
        for _ in range(500):
            skipped = rng.choice([0, 1, 3, 31, 32, 500, 999])
            if rng.random() < 0.5:
                records.append((skipped, 0, rng.randrange(64)))
            else:
                records.append((skipped, rng.randrange(2 ** 32), None))
        _, one_by_one = self._writer()
        for record in records:
            one_by_one.append(*record)
        _, batched = self._writer()
        batched.append_many(records)
        fll_a = one_by_one.finalize(end_ic=1000)
        fll_b = batched.finalize(end_ic=1000)
        assert fll_a.payload == fll_b.payload
        assert fll_a.payload_bits == fll_b.payload_bits
        assert fll_a.num_records == fll_b.num_records
        assert fll_a.raw_payload_bits == fll_b.raw_payload_bits
        assert one_by_one.value_bits == batched.value_bits

    def test_append_many_validates_like_append(self):
        config, writer = self._writer(interval=100)
        with pytest.raises(ValueError):
            writer.append_many([(-1, 5, None)])  # negative L-Count
        with pytest.raises(ValueError):
            writer.append_many([(10 ** 9, 1, None)])  # L-Count overflow
        # The aliasing window: skipped with exactly the escape bit set
        # would fuse to a valid-looking chunk; both paths must reject it.
        aliasing = 1 << config.full_lcount_bits
        _, reference = self._writer(interval=100)
        with pytest.raises(ValueError):
            reference.append(aliasing, 1, None)
        with pytest.raises(ValueError):
            writer.append_many([(aliasing, 1, None)])
        # Same for a dictionary index that would alias the LV-Type bit.
        bad_index = 1 << config.dictionary.index_bits
        with pytest.raises(ValueError):
            reference.append(0, 1, bad_index)
        with pytest.raises(ValueError):
            writer.append_many([(0, 1, bad_index)])

    def test_append_many_masks_values_like_write_word(self):
        _, one_by_one = self._writer(interval=100)
        one_by_one.append(0, -5, None)
        _, batched = self._writer(interval=100)
        batched.append_many([(0, -5, None)])
        assert one_by_one.finalize(1).payload == batched.finalize(1).payload


class TestRecorderEquivalence:
    """note_loads/note_commits vs note_load/note_commit on random scripts."""

    def _recorder(self, config):
        defaults = MachineConfig()
        hierarchy = FirstLoadHierarchy(defaults.l1, defaults.l2)
        return BugNetRecorder(config, hierarchy, LogStore(config))

    def _script(self, seed):
        rng = random.Random(seed)
        script = []
        for _ in range(8000):
            if rng.random() < 0.4:
                script.append(("load", rng.randrange(0, 60),
                               rng.random() < 0.3))
            else:
                script.append(("commit", rng.randrange(1, 9)))
        return script

    def _drive_commits(self, recorder, count):
        while count:
            if not recorder.active:
                recorder.begin_interval(0, ZERO_REGS)
            count = recorder.note_commits(count)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("interval", [50, 313, 2000])
    def test_batched_loads_bit_identical(self, seed, interval):
        config = BugNetConfig(checkpoint_interval=interval)
        script = self._script(seed)

        reference = self._recorder(config)
        reference.begin_interval(0, ZERO_REGS)
        for event in script:
            if event[0] == "load":
                if not reference.active:
                    reference.begin_interval(0, ZERO_REGS)
                reference.note_load(event[1], event[2])
            else:
                self._drive_commits(reference, event[1])
        if reference.active:
            reference.end_interval("shutdown")

        batched = self._recorder(config)
        batched.begin_interval(0, ZERO_REGS)
        index = 0
        while index < len(script):
            if script[index][0] == "load":
                batch = []
                while index < len(script) and script[index][0] == "load":
                    batch.append((script[index][1], script[index][2]))
                    index += 1
                if not batched.active:
                    batched.begin_interval(0, ZERO_REGS)
                batched.note_loads(batch)
            else:
                self._drive_commits(batched, script[index][1])
                index += 1
        if batched.active:
            batched.end_interval("shutdown")

        assert_stores_identical(reference.log_store, batched.log_store)
        assert reference.loads_seen == batched.loads_seen
        assert reference.loads_logged == batched.loads_logged
        assert reference.intervals_closed == batched.intervals_closed

    def test_note_loads_requires_active_interval(self):
        recorder = self._recorder(BugNetConfig(checkpoint_interval=100))
        with pytest.raises(RuntimeError):
            recorder.note_loads([(1, True)])

    def test_note_loads_returns_logged_count(self):
        recorder = self._recorder(BugNetConfig(checkpoint_interval=100))
        recorder.begin_interval(0, ZERO_REGS)
        logged = recorder.note_loads([(7, True), (7, False), (8, True)])
        assert logged == 2
        assert recorder.loads_seen == 3


class TestTraceEngineEquivalence:
    """Segment-batched TraceEngine vs the per-event reference loop."""

    @pytest.mark.parametrize("name", ["gzip", "crafty", "mcf"])
    @pytest.mark.parametrize("interval", [2_000, 100_000])
    def test_personality_bit_identical(self, name, interval):
        personality = SPEC_WORKLOADS[name]
        instructions = 60_000
        runs = []
        for fast in (False, True):
            config = BugNetConfig(checkpoint_interval=interval)
            engine = TraceEngine(name, config, fast_path=fast)
            stats = engine.run(personality.events(instructions), instructions)
            runs.append((engine, stats))
        (slow_engine, slow_stats), (fast_engine, fast_stats) = runs
        assert_stores_identical(slow_engine.store, fast_engine.store)
        assert slow_stats.instructions == fast_stats.instructions
        assert slow_stats.loads == fast_stats.loads
        assert slow_stats.stores == fast_stats.stores
        assert slow_stats.logged_loads == fast_stats.logged_loads
        assert slow_stats.intervals == fast_stats.intervals
        assert slow_stats.fll_bytes == fast_stats.fll_bytes
        assert slow_stats.fll_payload_bits == fast_stats.fll_payload_bits
        assert slow_stats.fll_raw_payload_bits == fast_stats.fll_raw_payload_bits
        assert slow_stats.fll_shared_bits == fast_stats.fll_shared_bits
        assert slow_stats.memory_fills == fast_stats.memory_fills
        assert slow_stats.writebacks == fast_stats.writebacks

    def test_tiny_interval_straddles(self):
        """Intervals shorter than the mean gap force the straddle path."""
        personality = SPEC_WORKLOADS["gzip"]
        instructions = 5_000
        stores = []
        for fast in (False, True):
            config = BugNetConfig(checkpoint_interval=7)
            engine = TraceEngine("gzip", config, fast_path=fast)
            engine.run(personality.events(instructions), instructions)
            stores.append(engine.store)
        assert_stores_identical(*stores)

    def test_empty_chunk_in_stream(self):
        """A zero-length chunk mid-stream must not derail either mode."""
        personality = SPEC_WORKLOADS["gzip"]

        def with_empty(instructions):
            generator = personality.events(instructions)
            first = next(generator)
            yield first
            yield tuple(array[:0] for array in first)
            yield from generator

        stores = []
        for fast in (False, True):
            config = BugNetConfig(checkpoint_interval=2_000)
            engine = TraceEngine("gzip", config, fast_path=fast)
            stats = engine.run(with_empty(20_000), 20_000)
            assert stats.instructions == 20_000
            stores.append(engine.store)
        assert_stores_identical(*stores)

    def test_satellites_force_reference_path(self):
        """Satellite dictionaries sample per load; results must not change."""
        personality = SPEC_WORKLOADS["gzip"]
        config = BugNetConfig(checkpoint_interval=10_000)
        engine = TraceEngine("gzip", config, satellite_sizes=(16,),
                             fast_path=True)
        stats = engine.run(personality.events(20_000), 20_000)
        assert stats.dict_stats[16].lookups == stats.loads


class TestMachineEquivalence:
    """Single-core burst execution vs per-instruction stepping."""

    def _run(self, program, fast, interval=200, max_instructions=10_000_000):
        machine = Machine(
            program,
            MachineConfig(),
            BugNetConfig(checkpoint_interval=interval),
            fast_path=fast,
        )
        machine.spawn()
        return machine, machine.run(max_instructions=max_instructions)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_programs_bit_identical(self, seed):
        program = random_program(seed)
        _, slow = self._run(program, fast=False)
        _, fast = self._run(program, fast=True)
        assert slow.global_steps == fast.global_steps
        assert slow.exit_codes == fast.exit_codes
        assert slow.console_values == fast.console_values
        assert slow.crashed == fast.crashed
        assert_stores_identical(slow.log_store, fast.log_store)

    def test_instruction_cap_respected(self):
        program = random_program(3)
        _, slow = self._run(program, fast=False, max_instructions=500)
        _, fast = self._run(program, fast=True, max_instructions=500)
        assert slow.global_steps == fast.global_steps <= 500
        assert slow.timed_out == fast.timed_out
        assert_stores_identical(slow.log_store, fast.log_store)

    def test_fast_logs_replay(self):
        """Logs recorded through the burst path still replay exactly."""
        from repro.replay import Replayer

        program = random_program(11)
        machine = Machine(
            program, MachineConfig(),
            BugNetConfig(checkpoint_interval=150),
            collect_traces=True, fast_path=True,
        )
        machine.spawn()
        result = machine.run()
        # collect_traces disables the burst; re-record without collection
        # and replay those logs against the collected reference trace.
        fast_machine = Machine(
            program, MachineConfig(),
            BugNetConfig(checkpoint_interval=150), fast_path=True,
        )
        fast_machine.spawn()
        fast_result = fast_machine.run()
        flls = [cp.fll for cp in fast_result.log_store.checkpoints(0)]
        replays = Replayer(program, fast_machine.bugnet).replay(flls)
        events = [e for r in replays for e in r.events]
        from repro.replay import assert_traces_equal

        assert_traces_equal(machine.collectors[0], events)
        assert result.global_steps == fast_result.global_steps

    def test_burst_disabled_under_timer(self):
        """Preemptive timer quanta always use the per-instruction path."""
        program = random_program(5)
        machine = Machine(
            program, MachineConfig(timer_interval=50),
            BugNetConfig(checkpoint_interval=200), fast_path=True,
        )
        machine.spawn()
        result = machine.run()
        reasons = {cp.reason for cp in result.log_store.checkpoints(0)}
        assert "interrupt" in reasons
