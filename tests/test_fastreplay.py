"""Equivalence tests: compiled-dispatch replay vs the reference interpreter.

The fast path (:mod:`repro.replay.fastreplay`) must be bit-identical to
:class:`~repro.replay.replayer.Replayer` on everything validation
consumes: signature tail PCs, end PC (including the
transfer-to-invalid-address case fetch-fault crashes end on), end
registers, reconstructed memory, records consumed, and the divergence
behavior on corrupt logs.  The whole Table-1 bug suite is the corpus —
it covers memory, instruction-fetch and arithmetic faults, dynamic
jumps, and dictionary-encoded first-load traffic.
"""

import pytest

from repro.common.config import BugNetConfig
from repro.common.errors import LogDecodeError, ReplayDivergence
from repro.fleet.ingest import _DECODE_ERRORS
from repro.fleet.signature import replay_tail
from repro.replay.fastreplay import fast_replay_interval
from repro.replay.replayer import Replayer
from repro.tracing.fll import FLLReader
from repro.tracing.serialize import dump_crash_report, load_crash_report
from repro.workloads.bugs import BUG_SUITE, BUGS_BY_NAME, run_bug

# Fetch-fault bugs end their final interval on a jump to a non-code
# address; the fast path must report that address as the end PC.
FETCH_FAULT_BUGS = ("ncompress-4.2.4", "gnuplot-3.7.1-2", "python-2.1.1-2")
INTERVALS = (500, 5_000, 100_000)


def _crash(name: str, interval: int):
    config = BugNetConfig(checkpoint_interval=interval)
    run = run_bug(BUGS_BY_NAME[name], bugnet=config, record=True)
    assert run.crashed
    return run, config


@pytest.mark.parametrize("bug", [bug.name for bug in BUG_SUITE])
def test_whole_suite_equivalent(bug):
    run, config = _crash(bug, 2_000)
    report = run.result.crash
    slow = replay_tail(report, config, run.program, fast=False)
    fast = replay_tail(report, config, run.program, fast=True)
    assert fast.tail_pcs == slow.tail_pcs
    assert fast.end_pc == slow.end_pc
    assert fast.end_regs == slow.end_regs
    assert fast.instructions == slow.instructions
    assert fast.intervals == slow.intervals
    assert fast.memory._words == slow.memory._words


@pytest.mark.parametrize("interval", INTERVALS)
def test_interval_sweep_equivalent(interval):
    """Interval size changes chain shape (many short intervals vs one
    long one) and L-Count encodings; equivalence must hold across it."""
    for bug in ("tar-1.13.25", "bc-1.06", "w3m-0.3.2.2"):
        run, config = _crash(bug, interval)
        report = run.result.crash
        slow = replay_tail(report, config, run.program, fast=False)
        fast = replay_tail(report, config, run.program, fast=True)
        assert fast.tail_pcs == slow.tail_pcs
        assert fast.end_pc == slow.end_pc
        assert fast.end_regs == slow.end_regs
        assert fast.memory._words == slow.memory._words


@pytest.mark.parametrize("bug", FETCH_FAULT_BUGS)
def test_fetch_fault_end_pc_is_bad_target(bug):
    """An interval ending on a jump to a non-fetchable address must end
    at that raw address (not fault early, not round it)."""
    run, config = _crash(bug, 5_000)
    report = run.result.crash
    fast = replay_tail(report, config, run.program, fast=True)
    assert fast.end_pc == report.fault_pc
    slow = replay_tail(report, config, run.program, fast=False)
    assert slow.end_pc == fast.end_pc


def test_per_interval_records_consumed_match():
    run, config = _crash("tar-1.13.25", 500)
    report = run.result.crash
    flls = report.replay_chain(report.faulting_tid)
    assert len(flls) > 1
    replayer = Replayer(run.program, config)
    from repro.arch.memory import Memory

    slow_mem, fast_mem = Memory(fault_checks=False), Memory(fault_checks=False)
    for fll in flls:
        slow = replayer.replay_interval(fll, memory=slow_mem,
                                        collect_events=False)
        fast = fast_replay_interval(run.program, config, fll,
                                    memory=fast_mem)
        assert fast.records_consumed == slow.records_consumed
        assert fast.end_pc == slow.end_pc
        assert fast.end_regs == slow.end_regs


def test_decode_all_matches_incremental_reader():
    run, config = _crash("gnuplot-3.7.1-1", 2_000)
    report = run.result.crash
    for fll in report.replay_chain(report.faulting_tid):
        eager = FLLReader(config, fll).decode_all()
        lazy = list(FLLReader(config, fll))
        assert eager == lazy


def test_decode_all_rejects_truncated_payload():
    run, config = _crash("bc-1.06", 2_000)
    report = run.result.crash
    fll = report.replay_chain(report.faulting_tid)[-1]
    assert fll.num_records > 0
    truncated = fll.__class__(
        header=fll.header,
        payload=fll.payload[: max(len(fll.payload) // 2, 1)],
        payload_bits=max(fll.payload_bits // 2, 1),
        num_records=fll.num_records,
        end_ic=fll.end_ic,
        fault_pc=fll.fault_pc,
        raw_payload_bits=fll.raw_payload_bits,
    )
    with pytest.raises(LogDecodeError, match="truncated"):
        FLLReader(config, truncated).decode_all()


class TestCorruptionRejection:
    """Both paths must reject corrupted reports (reason strings may
    differ; the *decision* may not)."""

    def _flip_results(self, flip_at: float):
        run, config = _crash("tidy-34132-3", 5_000)
        blob = bytearray(dump_crash_report(run.result.crash, config))
        blob[int(len(blob) * flip_at)] ^= 0xFF
        outcomes = []
        for fast in (False, True):
            try:
                report, cfg = load_crash_report(bytes(blob))
                replay_tail(report, cfg, run.program, fast=fast)
                outcomes.append("accepted")
            except _DECODE_ERRORS as error:
                outcomes.append(type(error).__name__)
        return outcomes

    @pytest.mark.parametrize("flip_at", [0.3, 0.5, 0.7, 0.9])
    def test_corrupt_blob_rejected_by_both(self, flip_at):
        slow_outcome, fast_outcome = self._flip_results(flip_at)
        # zlib usually catches the flip at decode; when a flip survives
        # into the logs, both replayers must reject.
        assert slow_outcome != "accepted"
        assert fast_outcome != "accepted"


def test_divergent_log_raises_same_error_type():
    """Replay program A against the logs of program B: both paths must
    diverge (wrong-binary detection, the core validation property)."""
    run_a, config = _crash("tidy-34132-2", 5_000)
    run_b, _ = _crash("tidy-34132-3", 5_000)
    fll_b = run_b.result.crash.replay_chain(
        run_b.result.crash.faulting_tid)[-1]
    with pytest.raises((ReplayDivergence, LogDecodeError)):
        Replayer(run_a.program, config).replay_interval(fll_b)
    with pytest.raises((ReplayDivergence, LogDecodeError)):
        fast_replay_interval(run_a.program, config, fll_b)


MT_BUGS = [bug.name for bug in BUG_SUITE if bug.multithreaded]


class TestTracedMultiThreadEquivalence:
    """The compiled traced MT path vs the reference interpreter.

    ``replay_all_threads(fast=True)`` feeds fleet validation and race
    inference; everything it derives — constraints, merged schedule,
    per-thread end states, the access map, and the inferred races —
    must be identical to the reference mode across the multithreaded
    Table-1 corpus.
    """

    def _both(self, name, interval=20_000):
        from repro.replay.races import ReportLogs, replay_all_threads

        run, config = _crash(name, interval)
        report, loaded_config = load_crash_report(
            dump_crash_report(run.result.crash, config)
        )
        logs = ReportLogs(report)
        programs = {tid: run.program for tid in report.thread_ids}
        reference = replay_all_threads(logs, programs, loaded_config)
        fast = replay_all_threads(logs, programs, loaded_config, fast=True)
        return report, reference, fast

    @pytest.mark.parametrize("bug", MT_BUGS)
    def test_constraints_schedule_and_end_states(self, bug):
        report, reference, fast = self._both(bug)
        assert reference.constraints == fast.constraints
        assert reference.schedule == fast.schedule
        assert reference.thread_ids == fast.thread_ids
        for tid in report.thread_ids:
            assert reference.thread_length(tid) == fast.thread_length(tid)
            last = reference.per_thread[tid][-1]
            traced = fast.traced[tid]
            assert last.end_pc == traced.end_pc
            assert last.end_regs == traced.end_regs
            # The PC stream is exactly the event PCs.
            event_pcs = [event.pc
                         for interval in reference.per_thread[tid]
                         for event in interval.events]
            assert event_pcs == traced.pcs

    @pytest.mark.parametrize("bug", MT_BUGS)
    def test_access_map_and_races_identical(self, bug):
        from repro.replay.races import infer_races

        _report, reference, fast = self._both(bug)
        assert reference.access_map() == fast.access_map()
        assert (infer_races(reference, sync=[])
                == infer_races(fast, sync=[]))

    def test_filtered_access_map_is_a_restriction(self):
        _report, _reference, fast = self._both("gaim-0.82.1")
        full = fast.access_map()
        some_addr = next(iter(full))
        filtered = fast.access_map({some_addr})
        assert set(filtered) == {some_addr}
        assert filtered[some_addr] == full[some_addr]


def test_trace_and_tail_together_fill_the_tail():
    """Passing both a trace and a tail deque must fill the tail exactly
    as the tail-only path does (it used to come back silently empty)."""
    from collections import deque

    from repro.arch.memory import Memory
    from repro.replay.fastreplay import ChainTrace

    run, config = _crash("bc-1.06", 2_000)
    report = run.result.crash
    flls = report.replay_chain(report.faulting_tid)

    tail_only: deque = deque(maxlen=12)
    memory = Memory(fault_checks=False)
    for fll in flls:
        fast_replay_interval(run.program, config, fll, memory=memory,
                             tail=tail_only, tail_depth=12)

    both: deque = deque(maxlen=12)
    trace = ChainTrace()
    memory = Memory(fault_checks=False)
    for fll in flls:
        fast_replay_interval(run.program, config, fll, memory=memory,
                             tail=both, tail_depth=12, trace=trace)

    assert list(both) == list(tail_only)
    assert list(both) == trace.pcs[-12:]
