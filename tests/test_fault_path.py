"""Integration tests for the crash path (paper §4.8) and Figure 2 sizing."""

from repro.analysis.sizes import fll_bytes_for_window, report_bytes_for_window
from repro.arch import assemble
from repro.arch.memory import Memory
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay import Replayer, assert_traces_equal

NULL_DEREF = """
.data
ptr: .word 0
.text
main:
    li   s0, 0
    li   s1, 40
warm:
    addi s0, s0, 1
    blt  s0, s1, warm
    lw   t0, ptr
    lw   t1, 0(t0)
    li   v0, 1
    syscall
"""


def crash_run(source, interval=25, **kwargs):
    program = assemble(source)
    machine = Machine(program, MachineConfig(),
                      BugNetConfig(checkpoint_interval=interval),
                      collect_traces=True, **kwargs)
    machine.spawn()
    result = machine.run()
    assert result.crashed
    return program, machine, result


class TestCrashReports:
    def test_fault_metadata(self):
        program, machine, result = crash_run(NULL_DEREF)
        crash = result.crash
        assert crash.fault_kind == "memory"
        assert crash.faulting_tid == 0
        assert crash.fault_pc == program.pc_of("main") + 4 * (
            (crash.fault_pc - program.pc_of("main")) // 4
        )
        assert crash.fault_source_line > 0
        assert "unmapped" in crash.fault_message

    def test_final_interval_has_fault_pc(self):
        _, _, result = crash_run(NULL_DEREF)
        last = result.crash.checkpoints[0][-1]
        assert last.fll.fault_pc == result.crash.fault_pc
        assert last.reason == "fault"

    def test_replay_window_covers_whole_run(self):
        _, machine, result = crash_run(NULL_DEREF)
        fault_thread = machine.kernel.thread(0)
        assert result.crash.replay_window(0) == fault_thread.cpu.inst_count

    def test_crash_replay_reaches_fault_point(self):
        program, machine, result = crash_run(NULL_DEREF)
        flls = result.crash.flls_for(0)
        replayer = Replayer(program, machine.bugnet)
        memory = Memory(fault_checks=False)
        replays = [replayer.replay_interval(f, memory=memory) for f in flls]
        events = [e for r in replays for e in r.events]
        assert_traces_equal(machine.collectors[0], events)
        assert replays[-1].end_pc == result.crash.fault_pc

    def test_fault_probe_reproduces_crash(self):
        program, machine, result = crash_run(NULL_DEREF)
        flls = result.crash.flls_for(0)
        replayer = Replayer(program, machine.bugnet)
        memory = Memory(fault_checks=False)
        last = None
        for fll in flls:
            last = replayer.replay_interval(fll, memory=memory)
        fault = replayer.probe_fault(
            flls[-1], memory, last.end_pc, last.end_regs,
            mapped_pages=result.crash.mapped_pages,
        )
        assert fault is not None
        assert fault.kind == "memory"

    def test_summary_readable(self):
        _, _, result = crash_run(NULL_DEREF)
        text = result.crash.summary()
        assert "memory fault" in text
        assert "replay window" in text

    def test_total_bytes_positive(self):
        _, machine, result = crash_run(NULL_DEREF)
        assert result.crash.total_bytes(machine.bugnet) > 0

    def test_arithmetic_fault_kind(self):
        source = """
main:
    li t0, 9
    li t1, 0
    div t2, t0, t1
"""
        _, _, result = crash_run(source)
        assert result.crash.fault_kind == "arithmetic"

    def test_instruction_fault_kind(self):
        source = """
main:
    li ra, 0x00001000
    jr ra
"""
        _, _, result = crash_run(source)
        assert result.crash.fault_kind == "instruction"

    def test_fault_on_first_instruction_of_interval(self):
        # A crash on the very first instruction after an interval close
        # still produces a (zero-length) final FLL carrying the fault PC.
        source = """
main:
    li v0, 5
    syscall
    lw t0, 0(zero)
"""
        _, _, result = crash_run(source, interval=1_000_000)
        last = result.crash.checkpoints[0][-1]
        assert last.fll.fault_pc is not None


class TestWindowSizing:
    def test_fll_bytes_for_window_subset(self):
        _, machine, result = crash_run(NULL_DEREF, interval=10)
        config = machine.bugnet
        small = fll_bytes_for_window(result.crash, config, window=5)
        everything = fll_bytes_for_window(result.crash, config, window=10**9)
        assert 0 < small < everything
        assert everything == result.crash.fll_bytes(config, tid=0)

    def test_report_bytes_include_races(self):
        _, machine, result = crash_run(NULL_DEREF, interval=10)
        config = machine.bugnet
        with_races = report_bytes_for_window(result.crash, config, window=20)
        without = report_bytes_for_window(result.crash, config, window=20,
                                          include_races=False)
        assert with_races > without

    def test_log_budget_bounds_replay_window(self):
        # With a tight main-memory budget, old checkpoints are discarded
        # and the replay window shrinks accordingly (paper §7.2).
        source = """
main:
    li  s0, 0
    li  s1, 2000
spin:
    addi s0, s0, 1
    blt  s0, s1, spin
    lw   t0, 0(zero)
"""
        program = assemble(source)
        machine = Machine(
            program, MachineConfig(),
            BugNetConfig(checkpoint_interval=50, log_memory_budget=4096),
            collect_traces=False,
        )
        machine.spawn()
        result = machine.run()
        assert result.crashed
        assert result.log_store.evicted_checkpoints > 0
        window = result.crash.replay_window(0)
        total = machine.kernel.thread(0).cpu.inst_count
        assert window < total
        # The retained suffix still replays cleanly.
        flls = result.crash.flls_for(0)
        replays = Replayer(program, machine.bugnet).replay(flls)
        assert sum(r.instructions for r in replays) == window
