"""Tests for the validated ingestion pipeline (and v1-format compat)."""

import pytest

from repro.common.config import BugNetConfig
from repro.fleet.ingest import (
    IngestPipeline,
    resolver_from_programs,
    resolver_from_sources,
)
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


@pytest.fixture(scope="module")
def crashed():
    config = BugNetConfig(checkpoint_interval=2_000)
    run = run_bug(BUGS_BY_NAME["bc-1.06"], bugnet=config, record=True)
    assert run.crashed
    return run, config


@pytest.fixture
def pipeline(crashed, tmp_path):
    run, _config = crashed
    store = ReportStore(tmp_path / "store", num_shards=4)
    resolver = resolver_from_programs({"bc-1.06": run.program})
    return IngestPipeline(store, resolver)


class TestAccept:
    def test_valid_report_accepted(self, crashed, pipeline):
        run, config = crashed
        blob = dump_crash_report(run.result.crash, config)
        result = pipeline.ingest_blob("r0", blob)
        assert result.accepted
        assert result.reason == "ok"
        assert result.entry is not None
        assert result.entry.replay_window == run.result.crash.replay_window(0)
        assert result.instructions_replayed == result.entry.replay_window
        assert len(pipeline.store) == 1
        report, _ = pipeline.store.load(result.entry)
        assert report.fault_pc == run.result.crash.fault_pc

    def test_duplicate_reports_share_signature(self, crashed, pipeline):
        run, config = crashed
        blob = dump_crash_report(run.result.crash, config)
        first = pipeline.ingest_blob("r0", blob)
        second = pipeline.ingest_blob("r1", blob, observed_at=1)
        assert first.digest == second.digest
        assert len(pipeline.store.entries(first.digest)) == 2

    def test_worker_pool_matches_serial(self, crashed, tmp_path):
        run, config = crashed
        blob = dump_crash_report(run.result.crash, config)
        items = [(f"r{i}", blob, i) for i in range(6)]
        outcomes = {}
        for workers in (1, 4):
            store = ReportStore(tmp_path / f"w{workers}", num_shards=4)
            pipe = IngestPipeline(
                store, resolver_from_programs({"bc-1.06": run.program}),
                workers=workers,
            )
            results = pipe.ingest_many(items)
            outcomes[workers] = [
                (r.label, r.accepted, r.digest, r.entry.seq) for r in results
            ]
        assert outcomes[1] == outcomes[4]


class TestReject:
    def test_corrupted_body_rejected(self, crashed, pipeline):
        run, config = crashed
        blob = bytearray(dump_crash_report(run.result.crash, config))
        blob[len(blob) // 2] ^= 0xFF
        result = pipeline.ingest_blob("bad", bytes(blob))
        assert not result.accepted
        assert result.reason.startswith("decode")
        assert len(pipeline.store) == 0
        assert pipeline.rejected == 1

    def test_truncated_blob_rejected(self, crashed, pipeline):
        run, config = crashed
        blob = dump_crash_report(run.result.crash, config)
        result = pipeline.ingest_blob("short", blob[:40])
        assert not result.accepted
        assert result.reason.startswith("decode")

    def test_garbage_rejected(self, pipeline):
        result = pipeline.ingest_blob("junk", b"not a report at all")
        assert not result.accepted
        assert "magic" in result.reason

    def test_unknown_program_rejected(self, crashed, tmp_path):
        run, config = crashed
        store = ReportStore(tmp_path / "s", num_shards=2)
        pipe = IngestPipeline(store, resolver_from_programs({}))
        result = pipe.ingest_blob("r", dump_crash_report(run.result.crash, config))
        assert not result.accepted
        assert "unknown program" in result.reason

    def test_wrong_binary_rejected(self, crashed, tmp_path):
        """Replaying against the wrong binary must not pass validation."""
        run, config = crashed
        other = BUGS_BY_NAME["tar-1.13.25"].program()
        store = ReportStore(tmp_path / "s", num_shards=2)
        pipe = IngestPipeline(
            store, resolver_from_programs({"bc-1.06": other})
        )
        result = pipe.ingest_blob("r", dump_crash_report(run.result.crash, config))
        assert not result.accepted
        assert result.reason.startswith(("replay", "fault", "decode"))

    def test_missing_fault_interval_rejected(self, tmp_path):
        """Stripping the faulting checkpoint must not bypass validation."""
        config = BugNetConfig(checkpoint_interval=100)
        run = run_bug(BUGS_BY_NAME["bc-1.06"], bugnet=config, record=True)
        report = run.result.crash
        assert len(report.checkpoints[0]) > 1
        original = report.checkpoints[0]
        try:
            report.checkpoints[0] = original[:-1]
            blob = dump_crash_report(report, config)
        finally:
            report.checkpoints[0] = original
        store = ReportStore(tmp_path / "s", num_shards=2)
        pipe = IngestPipeline(
            store, resolver_from_programs({"bc-1.06": run.program})
        )
        result = pipe.ingest_blob("stripped", blob)
        assert not result.accepted
        assert "no fault point" in result.reason

    def test_no_logs_rejected(self, crashed, pipeline):
        run, config = crashed
        stripped = run.result.crash
        checkpoints = stripped.checkpoints
        try:
            stripped.checkpoints = {}
            blob = dump_crash_report(stripped, config)
        finally:
            stripped.checkpoints = checkpoints
        result = pipeline.ingest_blob("empty", blob)
        assert not result.accepted
        assert "no replayable chain" in result.reason


class TestFormatCompat:
    def test_v1_report_ingests_identically_to_v2(self, crashed, tmp_path):
        """A legacy v1-format shipment must land in the same bucket,
        with the same signature and replay window, as today's v2."""
        run, config = crashed
        v1 = dump_crash_report(run.result.crash, config, version=1)
        v2 = dump_crash_report(run.result.crash, config, version=2)
        assert v1 != v2
        store = ReportStore(tmp_path / "compat", num_shards=4)
        pipe = IngestPipeline(
            store, resolver_from_programs({"bc-1.06": run.program})
        )
        result_v1, result_v2 = pipe.ingest_many(
            [("v1", v1, 0), ("v2", v2, 1)]
        )
        assert result_v1.accepted and result_v2.accepted
        assert result_v1.digest == result_v2.digest
        assert (result_v1.entry.replay_window
                == result_v2.entry.replay_window)
        buckets = build_buckets(store)
        assert len(buckets) == 1
        assert buckets[0].count == 2


class TestResolvers:
    def test_sources_resolver_matches_name_and_basename(self, crashed):
        run, _config = crashed
        resolver = resolver_from_sources([
            ("/builds/app/bc-1.06", run.program),
            ("/builds/app/other.s", run.program),
        ])
        assert resolver("bc-1.06") is run.program
        assert resolver("/elsewhere/bc-1.06") is run.program
        assert resolver("nope") is None

    def test_single_source_matches_everything(self, crashed):
        run, _config = crashed
        resolver = resolver_from_sources([("whatever.s", run.program)])
        assert resolver("totally-different-name") is run.program


class TestBudgetEnforcementDuringRun:
    def test_large_run_respects_byte_budget(self, tmp_path):
        """add_many protects its whole batch from eviction, so the
        pipeline must chunk commits: one big ingest run may not blow
        through the store's byte budget."""
        from repro.fleet.ingest import IngestPipeline
        from repro.fleet.signature import CrashSignature
        from repro.fleet.validate import ValidatedReport

        store = ReportStore(tmp_path / "budget", num_shards=2,
                            byte_budget=250)
        pipeline = IngestPipeline(store, lambda name: None, commit_batch=2)
        validated = []
        for index in range(6):
            signature = CrashSignature(
                program_name="prog", fault_kind="memory",
                fault_pc=0x400000 + index * 4, tail_pcs=(0x400000,),
            )
            validated.append(ValidatedReport(
                label=f"r{index}", blob=bytes([index]) * 100,
                observed_at=None, signature=signature,
                fault_kind="memory", program_name="prog",
                instructions=10,
            ))
        results = pipeline._commit_batch(validated)
        assert len(results) == 6
        assert all(result.accepted for result in results)
        # Budget held *during* the run: only the final chunk (plus at
        # most what fits) survives, never the whole 600 bytes.
        assert store.total_bytes <= 250
        assert len(store) == 2
