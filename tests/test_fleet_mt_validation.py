"""Race-aware fleet validation: every thread replays, races key buckets.

The admission-integrity scenario this pins: the fleet loop used to
validate only the *faulting* thread's chain, so a report whose
non-faulting-thread FLL/MRL blobs were corrupt sailed through ingest
and later crashed ``bugnet autopsy`` (which replays all threads).
Validation now chain-replays every thread with logs, cross-checks the
MRL ordering constraints, and infers the data races feeding the crash
— whose remote-store PCs become the signature's race evidence, so
schedule-different manifestations of one race dedup into one bucket.
"""

import copy
import dataclasses

import pytest

from repro.common.config import BugNetConfig
from repro.fleet.ingest import IngestPipeline
from repro.fleet.signature import compute_signature
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets, render_triage
from repro.fleet.validate import IngestResult, ValidatedReport, validate_report
from repro.forensics.autopsy import (
    VERDICT_RACE_REMOTE,
    autopsy_store,
    bug_suite_resolver,
)
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


@pytest.fixture(scope="module")
def resolver():
    return bug_suite_resolver()


@pytest.fixture(scope="module")
def mt_crash():
    """A fast multithreaded (non-racy) crash: python-2.1.1-2."""
    config = BugNetConfig(checkpoint_interval=2_000)
    run = run_bug(BUGS_BY_NAME["python-2.1.1-2"], bugnet=config, record=True)
    assert run.crashed
    assert len(run.result.crash.thread_ids) == 2
    return run, config


@pytest.fixture(scope="module")
def gaim_crashes():
    """Two schedule-different recordings of gaim's buddy-removal race.

    The seeds are chosen so the crash manifests at *different* PCs —
    the paper's gtkdialogs.c bug crashes at four different lines
    depending on where the removal lands in the repaint pass.
    """
    config = BugNetConfig(checkpoint_interval=20_000)
    runs = []
    for seed in (0, 4):
        run = run_bug(BUGS_BY_NAME["gaim-0.82.1"], bugnet=config,
                      record=True, interleave_seed=seed)
        assert run.crashed
        runs.append(run)
    assert (runs[0].result.crash.fault_pc
            != runs[1].result.crash.fault_pc), (
        "seeds no longer produce schedule-different manifestations; "
        "re-pick them"
    )
    return runs, config


def _corrupt_thread_fll(crash, tid, checkpoint=0):
    """A report whose *tid*'s FLL payload has one flipped byte."""
    corrupted = copy.copy(crash)
    corrupted.checkpoints = dict(crash.checkpoints)
    checkpoints = list(crash.checkpoints[tid])
    victim = checkpoints[checkpoint]
    payload = bytearray(victim.fll.payload)
    payload[len(payload) // 2] ^= 0xFF
    checkpoints[checkpoint] = dataclasses.replace(
        victim, fll=dataclasses.replace(victim.fll, payload=bytes(payload))
    )
    corrupted.checkpoints[tid] = checkpoints
    return corrupted


def _corrupt_thread_mrl(crash, tid, checkpoint=0):
    """A report whose *tid*'s MRL decodes to out-of-range garbage."""
    corrupted = copy.copy(crash)
    corrupted.checkpoints = dict(crash.checkpoints)
    checkpoints = list(crash.checkpoints[tid])
    victim = checkpoints[checkpoint]
    mrl = victim.mrl
    if mrl.payload:
        payload = bytearray(mrl.payload)
        payload[0] ^= 0xFF
        bad = dataclasses.replace(mrl, payload=bytes(payload))
    else:
        # No recorded race traffic: forge entries beyond the payload.
        bad = dataclasses.replace(mrl, num_entries=5)
    checkpoints[checkpoint] = dataclasses.replace(victim, mrl=bad)
    corrupted.checkpoints[tid] = checkpoints
    return corrupted


class TestThreadChainValidation:
    def test_valid_mt_report_accepted(self, mt_crash, resolver):
        run, config = mt_crash
        blob = dump_crash_report(run.result.crash, config)
        result = validate_report("ok", blob, None, resolver)
        assert isinstance(result, ValidatedReport)
        # python's worker thread shares no raced words with the crash:
        # the signature stays fault-site-keyed.
        assert result.signature.race_pcs == ()
        assert not result.signature.race_keyed

    def test_corrupt_nonfaulting_fll_rejected(self, mt_crash, resolver):
        """The original admission-integrity bug: this report used to be
        ACCEPTED, then crashed `bugnet autopsy` with a bare
        LookupError."""
        run, config = mt_crash
        crash = run.result.crash
        other = [t for t in crash.thread_ids
                 if t != crash.faulting_tid][0]
        blob = dump_crash_report(_corrupt_thread_fll(crash, other), config)
        result = validate_report("corrupt-fll", blob, None, resolver)
        assert isinstance(result, IngestResult)
        assert not result.accepted
        assert result.reason.startswith("replay")

    def test_corrupt_nonfaulting_mrl_rejected(self, mt_crash, resolver):
        run, config = mt_crash
        crash = run.result.crash
        other = [t for t in crash.thread_ids
                 if t != crash.faulting_tid][0]
        blob = dump_crash_report(_corrupt_thread_mrl(crash, other), config)
        result = validate_report("corrupt-mrl", blob, None, resolver)
        assert isinstance(result, IngestResult)
        assert not result.accepted
        assert "MRL" in result.reason or result.reason.startswith("replay")

    def test_mrl_entry_at_interval_end_rejected(self, mt_crash, resolver):
        """An MRL observing-instruction index must lie strictly inside
        its own interval: local_ic == end_ic is corruption even though
        it stays under the thread's total length (it would otherwise
        become a dead or re-attributed constraint and admit the
        report)."""
        from repro.tracing.mrl import MRLEntry, MRLWriter

        run, config = mt_crash
        crash = run.result.crash
        other = [t for t in crash.thread_ids
                 if t != crash.faulting_tid][0]
        corrupted = copy.copy(crash)
        corrupted.checkpoints = dict(crash.checkpoints)
        checkpoints = list(crash.checkpoints[other])
        victim = checkpoints[0]
        writer = MRLWriter(config, victim.mrl.header)
        writer.append(MRLEntry(
            local_ic=victim.fll.end_ic,   # == end_ic: out of range
            remote_tid=crash.faulting_tid,
            remote_cid=crash.checkpoints[
                crash.faulting_tid][0].fll.header.cid,
            remote_ic=1,
        ))
        checkpoints[0] = dataclasses.replace(victim, mrl=writer.finalize())
        corrupted.checkpoints[other] = checkpoints
        result = validate_report(
            "mrl-at-end", dump_crash_report(corrupted, config), None,
            resolver)
        assert isinstance(result, IngestResult)
        assert not result.accepted
        assert "lies beyond interval" in result.reason

    def test_corrupt_faulting_fll_rejected_not_raised(self, resolver):
        """Corrupt dictionary-encoded payloads raise bare LookupError
        from the decompressor; that must become a rejection verdict,
        never a traceback through `bugnet ingest` (single-thread path
        included)."""
        config = BugNetConfig(checkpoint_interval=2_000)
        run = run_bug(BUGS_BY_NAME["bc-1.06"], bugnet=config, record=True)
        crash = run.result.crash
        rejected = 0
        for checkpoint in range(len(crash.checkpoints[0])):
            if not crash.checkpoints[0][checkpoint].fll.payload:
                continue  # nothing to flip in a record-free interval
            blob = dump_crash_report(
                _corrupt_thread_fll(crash, 0, checkpoint), config)
            result = validate_report(f"c{checkpoint}", blob, None, resolver)
            if isinstance(result, IngestResult):
                assert not result.accepted
                rejected += 1
        assert rejected, "no corruption was even detected"

    def test_stripped_faulting_thread_rejected_with_detail(
            self, mt_crash, resolver):
        """Faulting thread's logs gone, other threads' logs present:
        a rejection verdict naming the threads that *do* have logs —
        not a traceback."""
        run, config = mt_crash
        crash = run.result.crash
        stripped = copy.copy(crash)
        stripped.checkpoints = {
            tid: checkpoints
            for tid, checkpoints in crash.checkpoints.items()
            if tid != crash.faulting_tid
        }
        blob = dump_crash_report(stripped, config)
        result = validate_report("no-chain", blob, None, resolver)
        assert isinstance(result, IngestResult)
        assert not result.accepted
        assert "no replayable chain" in result.reason
        assert "threads with logs" in result.reason

    def test_rejected_at_ingest_never_reaches_autopsy(
            self, mt_crash, resolver, tmp_path):
        """End-to-end: the corrupt-thread report must die at ingest and
        the store-wide autopsy must run clean over what was admitted."""
        run, config = mt_crash
        crash = run.result.crash
        other = [t for t in crash.thread_ids
                 if t != crash.faulting_tid][0]
        store = ReportStore(tmp_path / "store", num_shards=2)
        pipeline = IngestPipeline(store, resolver)
        results = pipeline.ingest_many([
            ("good", dump_crash_report(crash, config), None),
            ("bad", dump_crash_report(
                _corrupt_thread_fll(crash, other), config), None),
        ])
        assert results[0].accepted
        assert not results[1].accepted
        assert len(store) == 1
        outcomes = autopsy_store(store, resolver)
        assert len(outcomes) == 1
        assert outcomes[0].error == ""
        assert outcomes[0].autopsy is not None

    def test_legacy_store_with_corrupt_thread_reports_error_not_crash(
            self, mt_crash, resolver, tmp_path):
        """Stores written before thread validation can still hold such
        reports; the unattended batch must report the bucket's error
        instead of dying."""
        run, config = mt_crash
        crash = run.result.crash
        other = [t for t in crash.thread_ids
                 if t != crash.faulting_tid][0]
        blob = dump_crash_report(_corrupt_thread_fll(crash, other), config)
        store = ReportStore(tmp_path / "legacy", num_shards=2)
        # Bypass validation, as an old build would have.
        store.add("ab" * 32, blob, fault_kind="memory",
                  program_name=crash.program_name)
        outcomes = autopsy_store(store, resolver)
        assert len(outcomes) == 1
        # The faulting thread itself is intact, so the analysis may
        # succeed (race inference degrades to no evidence) — it must
        # just never raise out of the batch.
        assert outcomes[0].autopsy is not None or outcomes[0].error


class TestRaceAwareSignatures:
    def test_race_evidence_names_the_racing_store(self, gaim_crashes):
        runs, config = gaim_crashes
        run = runs[0]
        signature = compute_signature(run.result.crash, config, run.program)
        # compute_signature is faulting-thread-only (display shape):
        # race evidence comes from whole-report validation.
        result = validate_report(
            "gaim", dump_crash_report(run.result.crash, config), None,
            bug_suite_resolver())
        assert isinstance(result, ValidatedReport)
        root_pc = run.program.pc_of("root_cause")
        assert result.signature.race_pcs == (root_pc,)
        assert result.signature.race_keyed
        # Fault-site fields stay populated for display.
        assert result.signature.fault_pc == signature.fault_pc
        assert result.signature.tail_pcs == signature.tail_pcs

    def test_schedule_different_manifestations_one_bucket(
            self, gaim_crashes, resolver, tmp_path):
        """The acceptance scenario: two recordings of the same race,
        different interleavings, different crash PCs — one bucket."""
        runs, config = gaim_crashes
        store = ReportStore(tmp_path / "store", num_shards=4)
        pipeline = IngestPipeline(store, resolver)
        results = pipeline.ingest_many([
            (f"seed{i}", dump_crash_report(run.result.crash, config), i)
            for i, run in enumerate(runs)
        ])
        assert all(result.accepted for result in results)
        assert results[0].digest == results[1].digest
        buckets = build_buckets(store)
        assert len(buckets) == 1
        assert buckets[0].count == 2
        assert buckets[0].racy
        assert buckets[0].race_pcs == (runs[0].program.pc_of("root_cause"),)

    def test_triage_row_race_flagged_with_race_verdict(
            self, gaim_crashes, resolver, tmp_path):
        runs, config = gaim_crashes
        store = ReportStore(tmp_path / "store", num_shards=2)
        IngestPipeline(store, resolver).ingest_many([
            ("g", dump_crash_report(runs[0].result.crash, config), None),
        ])
        buckets = build_buckets(store)
        outcomes = autopsy_store(store, resolver)
        assert outcomes[0].autopsy.verdict == VERDICT_RACE_REMOTE
        assert outcomes[0].autopsy.race_adjacent
        text = render_triage(
            buckets, autopsies={o.digest: o for o in outcomes})
        assert "[racy]" in text
        assert VERDICT_RACE_REMOTE in text
        payload = buckets[0].to_dict()
        assert payload["racy"] is True
        assert payload["race_pcs"] == [runs[0].program.pc_of("root_cause")]

    def test_non_racy_mt_signature_unchanged(self, mt_crash, resolver):
        """Race-free reports (single- or multi-threaded) must keep the
        exact pre-race-awareness digest: no bucket churn on upgrade."""
        run, config = mt_crash
        crash = run.result.crash
        old_style = compute_signature(crash, config, run.program)
        result = validate_report(
            "mt", dump_crash_report(crash, config), None, resolver)
        assert isinstance(result, ValidatedReport)
        assert result.signature.digest == old_style.digest


class TestEveryMtBugFlowsEndToEnd:
    """The acceptance sweep: every multithreaded Table-1 entry goes
    fleet-sim-style synthesis → validated ingest → triage → unattended
    autopsy, with whole-report validation on every hop."""

    @pytest.mark.parametrize("name", [
        "gaim-0.82.1", "napster-1.5.2",
        "python-2.1.1-1", "python-2.1.1-2", "w3m-0.3.2.2",
    ])
    def test_mt_bug_ingests_triages_autopsies(self, name, resolver,
                                              tmp_path):
        config = BugNetConfig(checkpoint_interval=20_000)
        run = run_bug(BUGS_BY_NAME[name], bugnet=config, record=True,
                      interleave_seed=9)
        assert run.crashed, name
        assert len(run.result.crash.thread_ids) > 1
        store = ReportStore(tmp_path / "store", num_shards=2)
        pipeline = IngestPipeline(store, resolver)
        result = pipeline.ingest_blob(
            name, dump_crash_report(run.result.crash, config))
        assert result.accepted, (name, result.reason)
        buckets = build_buckets(store)
        assert len(buckets) == 1
        outcomes = autopsy_store(store, resolver)
        assert outcomes[0].error == "", (name, outcomes[0].error)
        autopsy = outcomes[0].autopsy
        assert autopsy is not None
        # Race-keyed buckets must carry a race-adjacent verdict.
        if buckets[0].racy:
            assert autopsy.race_adjacent, name


class TestMtRoundTrips:
    """Serialization compatibility for multithreaded reports (satellite:
    v1/v2 format round-trips with MRL logs present)."""

    def test_mt_report_v1_v2_same_bucket(self, gaim_crashes, resolver,
                                         tmp_path):
        from repro.tracing.serialize import load_crash_report

        runs, config = gaim_crashes
        crash = runs[0].result.crash
        v1 = dump_crash_report(crash, config, version=1)
        v2 = dump_crash_report(crash, config, version=2)
        assert v1 != v2
        # MRL payloads survive both formats byte-identically.
        for blob in (v1, v2):
            loaded, _ = load_crash_report(blob)
            for tid in crash.thread_ids:
                originals = crash.checkpoints[tid]
                restored = loaded.checkpoints[tid]
                assert [c.mrl.payload for c in originals] == \
                    [c.mrl.payload for c in restored]
                assert [c.mrl.num_entries for c in originals] == \
                    [c.mrl.num_entries for c in restored]
        assert any(
            checkpoint.mrl.num_entries
            for tid in crash.thread_ids
            for checkpoint in crash.checkpoints[tid]
        ), "expected recorded race traffic in the gaim shipment"
        store = ReportStore(tmp_path / "compat", num_shards=2)
        pipeline = IngestPipeline(store, resolver)
        result_v1, result_v2 = pipeline.ingest_many(
            [("v1", v1, 0), ("v2", v2, 1)]
        )
        assert result_v1.accepted and result_v2.accepted
        assert result_v1.digest == result_v2.digest
        assert result_v1.signature.race_pcs == result_v2.signature.race_pcs
        buckets = build_buckets(store)
        assert len(buckets) == 1 and buckets[0].count == 2

    def test_signature_stable_across_interleavings_of_same_recording(
            self, gaim_crashes, resolver):
        """Same recording serialized twice -> same evidence; and the two
        different recordings agree on the race evidence too."""
        runs, config = gaim_crashes
        evidence = []
        for run in runs:
            result = validate_report(
                "g", dump_crash_report(run.result.crash, config), None,
                resolver)
            assert isinstance(result, ValidatedReport)
            evidence.append(result.signature.race_pcs)
        assert evidence[0] == evidence[1] != ()
