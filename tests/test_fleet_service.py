"""Tests for the live ingestion service (in-process harness).

Covers the wire protocol, admission backpressure, validation parity
with the batch pipeline, deterministic commit ordering, idempotent
retries, /stats (both the native op and plain HTTP), and the
process-pool validation mode.
"""

import asyncio
import json

import pytest

from repro.fleet.ingest import IngestPipeline, resolver_from_programs
from repro.fleet.loadsim import (
    ServiceClient,
    run_load_sim,
    synthesize_corpus,
)
from repro.fleet.service import FleetService, ServiceConfig
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets
from repro.fleet.validate import ResolverSpec
from repro.fleet.wire import decode_payload, encode_frame

CORPUS_BUGS = ("tidy-34132-2", "tidy-34132-3")


@pytest.fixture(scope="module")
def corpus():
    programs, items, failures = synthesize_corpus(
        10, CORPUS_BUGS, seed=7, corrupt=2, intervals=(2_000, 5_000),
    )
    assert failures == 0
    return programs, items


def run_service(tmp_path, coro_factory, **service_kwargs):
    """Start a FleetService, run the coroutine, stop, return result."""
    config = service_kwargs.pop("config", None) or ServiceConfig(workers=0)

    async def main():
        service = FleetService(
            tmp_path / "store", ResolverSpec(), config, **service_kwargs,
        )
        host, port = await service.start()
        try:
            return await coro_factory(service, host, port)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestLatencyPercentile:
    """Nearest-rank percentiles: ceil(f*n)-1, not int(f*n) (which
    overshot p50 by one rank on even sample counts)."""

    def _report(self, latencies):
        from repro.fleet.loadsim import LoadSimReport, UploadOutcome

        return LoadSimReport(outcomes=[
            UploadOutcome(label=f"u{i}", status="accepted", attempts=1,
                          retries=0, reconnects=0, latency=value)
            for i, value in enumerate(latencies)
        ])

    def test_p50_even_count_is_lower_middle(self):
        report = self._report([1.0, 2.0, 3.0, 4.0])
        assert report.latency_percentile(0.50) == 2.0

    def test_p50_odd_count_is_middle(self):
        report = self._report([1.0, 2.0, 3.0])
        assert report.latency_percentile(0.50) == 2.0

    def test_p99_and_p100_clamp_to_max(self):
        report = self._report([float(i) for i in range(1, 11)])
        assert report.latency_percentile(0.99) == 10.0
        assert report.latency_percentile(1.0) == 10.0

    def test_extremes(self):
        report = self._report([5.0])
        assert report.latency_percentile(0.50) == 5.0
        assert self._report([]).latency_percentile(0.50) == 0.0


class TestUploadRoundTrip:
    def test_accepts_valid_rejects_corrupt(self, corpus, tmp_path):
        _programs, items = corpus

        async def scenario(service, host, port):
            return await run_load_sim(host, port, items, concurrency=4)

        report = run_service(tmp_path, scenario)
        assert len(report.accepted) == 10
        assert len(report.rejected) == 2
        assert not report.failed
        assert all(o.label.startswith("corrupt-") for o in report.rejected)
        store = ReportStore(tmp_path / "store")
        assert len(store) == 10
        # Two bugs -> two triage buckets covering all accepted reports.
        buckets = build_buckets(store)
        assert len(buckets) == 2
        assert sum(b.count for b in buckets) == 10

    def test_matches_batch_pipeline_verdicts(self, corpus, tmp_path):
        """Service and batch CLI share validate_report: identical
        accept/reject decisions and identical signatures per upload."""
        programs, items = corpus
        batch_store = ReportStore(tmp_path / "batch", num_shards=8)
        pipeline = IngestPipeline(
            batch_store, resolver_from_programs(programs)
        )
        batch_results = {
            result.label: result
            for result in pipeline.ingest_many(
                [(label, blob, None) for label, blob, _uid in items]
            )
        }

        async def scenario(service, host, port):
            client = ServiceClient(host, port)
            responses = {}
            for label, blob, upload_id in items:
                responses[label] = await client.upload(label, blob, upload_id)
            await client.close()
            return responses

        responses = run_service(tmp_path, scenario)
        for label, _blob, _uid in items:
            batch = batch_results[label]
            served = responses[label]
            assert (served["status"] == "accepted") == batch.accepted, label
            if batch.accepted:
                assert served["signature"] == batch.digest, label
        # Same bucket structure in both stores.
        service_store = ReportStore(tmp_path / "store")
        assert ({b.digest: b.count for b in build_buckets(service_store)}
                == {b.digest: b.count
                    for b in build_buckets(batch_store)})

    def test_sequential_uploads_commit_in_order(self, corpus, tmp_path):
        _programs, items = corpus
        valid = [i for i in items if not i[0].startswith("corrupt-")]

        async def scenario(service, host, port):
            client = ServiceClient(host, port)
            seqs = []
            for label, blob, upload_id in valid:
                response = await client.upload(label, blob, upload_id)
                assert response["status"] == "accepted"
                seqs.append(response["seq"])
            await client.close()
            return seqs

        seqs = run_service(tmp_path, scenario)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestBackpressure:
    def test_queue_full_returns_retry_never_drops(self, corpus, tmp_path):
        _programs, items = corpus
        valid = [i for i in items if not i[0].startswith("corrupt-")]
        config = ServiceConfig(workers=0, queue_limit=1)

        async def scenario(service, host, port):
            report = await run_load_sim(host, port, valid, concurrency=8)
            return report, service.counters.retried

        report, retried = run_service(tmp_path, scenario, config=config)
        # Every upload eventually lands (clients retried through the
        # explicit backpressure responses)...
        assert len(report.accepted) == len(valid)
        assert not report.failed
        # ... and with 8 connections against a queue of 1, backpressure
        # must actually have fired.
        assert retried > 0
        assert report.total_retries == retried
        store = ReportStore(tmp_path / "store")
        assert len(store) == len(valid)


class TestIdempotency:
    def test_same_upload_id_commits_once(self, corpus, tmp_path):
        _programs, items = corpus
        label, blob, upload_id = next(
            i for i in items if not i[0].startswith("corrupt-")
        )

        async def scenario(service, host, port):
            client = ServiceClient(host, port)
            first = await client.upload(label, blob, upload_id)
            second = await client.upload(label, blob, upload_id)
            third = await client.upload(label, blob, "different-id")
            await client.close()
            return first, second, third

        first, second, third = run_service(tmp_path, scenario)
        assert first["status"] == "accepted"
        assert first["duplicate"] is False
        assert second["status"] == "accepted"
        assert second["duplicate"] is True
        assert second["seq"] == first["seq"]
        # A different upload_id is a genuine new occurrence.
        assert third["status"] == "accepted"
        assert third["duplicate"] is False
        store = ReportStore(tmp_path / "store")
        assert len(store) == 2


class TestStats:
    def test_stats_op_shape(self, corpus, tmp_path):
        _programs, items = corpus

        async def scenario(service, host, port):
            await run_load_sim(host, port, items, concurrency=4)
            client = ServiceClient(host, port)
            stats = await client.stats()
            await client.close()
            return stats

        stats = run_service(tmp_path, scenario)
        assert stats["counters"]["received"] == len(items)
        assert stats["counters"]["accepted"] == 10
        assert stats["counters"]["rejected"] == 2
        assert stats["queue_depth"] == 0
        shards = stats["store"]["shards"]
        assert len(shards) == stats["store"]["num_shards"]
        assert sum(s["reports"] for s in shards) == 10

    def test_http_stats_and_healthz(self, corpus, tmp_path):
        async def scenario(service, host, port):
            responses = {}
            for path in ("/stats", "/healthz", "/nope"):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                head, _, body = raw.partition(b"\r\n\r\n")
                responses[path] = (head.split(b"\r\n")[0], body)
            return responses

        responses = run_service(tmp_path, scenario)
        status, body = responses["/stats"]
        assert b"200" in status
        payload = json.loads(body)
        assert "queue_depth" in payload
        assert "shards" in payload["store"]
        status, body = responses["/healthz"]
        assert b"200" in status
        assert json.loads(body) == {"ok": True, "reason": "ok"}
        status, _body = responses["/nope"]
        assert b"404" in status


class TestProtocolErrors:
    def test_unknown_op_and_empty_body(self, tmp_path):
        async def scenario(service, host, port):
            client = ServiceClient(host, port)
            unknown = await client.request({"op": "frobnicate"})
            empty = await client.upload("x", b"", "uid")
            await client.close()
            return unknown, empty

        unknown, empty = run_service(tmp_path, scenario)
        assert unknown["status"] == "error"
        assert empty["status"] == "rejected"
        assert "empty" in empty["reason"]

    def test_garbage_frame_gets_error_response(self, tmp_path):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\x00\x00\x00\x08nonsense")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = run_service(tmp_path, scenario)
        header, _ = decode_payload(raw[4:])
        assert header["status"] == "error"

    def test_oversized_frame_rejected(self, tmp_path):
        config = ServiceConfig(workers=0, max_frame=1024)

        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"op": "upload"}, b"z" * 4096))
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = run_service(tmp_path, scenario, config=config)
        header, _ = decode_payload(raw[4:])
        assert header["status"] == "error"


class TestProcessPoolMode:
    def test_process_workers_accept_corpus(self, corpus, tmp_path):
        """The ProcessPool path (pickled chunks, worker-side resolver
        build) produces the same accept set."""
        _programs, items = corpus
        config = ServiceConfig(workers=1, validate_chunk=4)

        async def scenario(service, host, port):
            return await run_load_sim(host, port, items, concurrency=4)

        report = run_service(tmp_path, scenario, config=config)
        assert len(report.accepted) == 10
        assert len(report.rejected) == 2
        assert not report.failed


class TestStopDrains:
    def test_stop_commits_in_flight_uploads(self, corpus, tmp_path):
        """stop(drain=True) must not abandon admitted uploads."""
        _programs, items = corpus
        valid = [i for i in items if not i[0].startswith("corrupt-")]

        async def scenario(service, host, port):
            uploads = asyncio.create_task(
                run_load_sim(host, port, valid, concurrency=4,
                             max_attempts=4, backoff_base=0.01)
            )
            # Let some uploads admit, then stop underneath them.
            while service.counters.received < 3:
                await asyncio.sleep(0.005)
            await service.stop()
            return await uploads

        report = run_service(tmp_path, scenario)
        # The durability contract: everything the client saw acked is
        # in the store; a commit whose ack was cut off by the shutdown
        # may additionally be present (the client's retry would get
        # `duplicate: true`), but never twice.
        store = ReportStore(tmp_path / "store")
        stored_ids = [e.upload_id for e in store.entries()]
        assert len(stored_ids) == len(set(stored_ids))
        acked_ids = {
            uid for (label, _b, uid) in valid
            if label in {o.label for o in report.accepted}
        }
        assert acked_ids <= set(stored_ids)
        assert len(store) >= len(report.accepted)


class TestProtocolVersion:
    def test_version_error_accepts_current_and_missing(self):
        from repro.fleet.wire import version_error

        assert version_error({"op": "upload"}) is None
        assert version_error({"op": "upload", "v": 1}) is None

    def test_version_error_rejects_newer_with_structure(self):
        from repro.fleet.wire import PROTOCOL_VERSION, version_error

        rejection = version_error({"op": "upload", "v": 99})
        assert rejection["status"] == "error"
        assert rejection["reason"] == "unsupported-version"
        assert rejection["max_supported"] == PROTOCOL_VERSION
        assert "v99" in rejection["detail"]

    def test_version_error_rejects_malformed(self):
        from repro.fleet.wire import version_error

        for bad in ("2", -1, 0, None):
            rejection = version_error({"v": bad})
            assert rejection["status"] == "error"
            assert rejection["reason"] == "malformed frame"

    def test_encode_frame_stamps_version(self):
        from repro.fleet.wire import decode_payload, encode_frame

        header, _body = decode_payload(encode_frame({"op": "ping"})[4:])
        assert header["v"] == 1

    def test_service_rejects_newer_frame_on_the_wire(self, corpus,
                                                     tmp_path):
        _programs, items = corpus
        _label, blob, _uid = items[0]

        async def scenario(service, host, port):
            client = ServiceClient(host, port)
            try:
                response = await client.request(
                    {"op": "upload", "label": "future", "v": 99}, blob,
                )
                # The connection survives: the client can downgrade and
                # retry on the same socket.
                retry = await client.request({"op": "ping"})
            finally:
                await client.close()
            return response, retry

        response, retry = run_service(tmp_path, scenario)
        assert response["status"] == "error"
        assert response["reason"] == "unsupported-version"
        assert response["max_supported"] == 1
        assert retry["status"] == "ok"

    def test_loadsim_surfaces_version_rejection(self, corpus, tmp_path):
        """An unsupported-version rejection is terminal (not retried to
        exhaustion) and names the reason in the outcome."""
        from repro.fleet import loadsim as loadsim_module
        from repro.fleet.loadsim import run_load_sim

        _programs, items = corpus
        label, blob, _uid = items[0]
        original = ServiceClient.upload

        async def future_upload(self, label, blob, upload_id="",
                                observed_at=None):
            header = {"op": "upload", "label": label,
                      "upload_id": upload_id, "v": 99}
            return await self.request(header, blob)

        async def scenario(service, host, port):
            loadsim_module.ServiceClient.upload = future_upload
            try:
                return await run_load_sim(
                    host, port, [(label, blob, "up-v99")],
                    concurrency=1, max_attempts=5,
                )
            finally:
                loadsim_module.ServiceClient.upload = original

        report = run_service(tmp_path, scenario)
        assert len(report.failed) == 1
        outcome = report.failed[0]
        assert outcome.attempts == 1
        assert outcome.reason.startswith("unsupported-version")


class TestBackoffJitter:
    def test_seeded_schedule_is_reproducible(self):
        import random

        from repro.fleet.loadsim import backoff_delay

        a = [backoff_delay(random.Random(42), 0.02, n) for n in range(1, 8)]
        b = [backoff_delay(random.Random(42), 0.02, n) for n in range(1, 8)]
        assert a == b

    def test_full_jitter_bounds_and_cap(self):
        import random

        from repro.fleet.loadsim import backoff_delay

        rng = random.Random(7)
        for attempt in range(1, 20):
            delay = backoff_delay(rng, 0.02, attempt)
            assert 0.0 <= delay <= 0.02 * (2 ** min(attempt, 6))

    def test_jitter_spreads_a_herd(self):
        """Two clients observing the same failure at the same attempt
        must not come back in lockstep (the pre-jitter schedule kept
        >= half the deterministic delay for everyone)."""
        import random

        from repro.fleet.loadsim import backoff_delay

        delays = [backoff_delay(random.Random(seed), 0.02, 3)
                  for seed in range(50)]
        assert min(delays) < 0.02 * (2 ** 3) * 0.25
        assert len(set(delays)) == len(delays)
