"""Tests for replay-derived crash signatures (fleet dedup keys)."""

import pytest

from repro.common.config import BugNetConfig
from repro.common.errors import ReplayDivergence
from repro.fleet.signature import (
    CrashSignature,
    compute_signature,
    replay_tail,
)
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


def crash(name, interval, **kwargs):
    config = BugNetConfig(checkpoint_interval=interval, **kwargs)
    run = run_bug(BUGS_BY_NAME[name], bugnet=config, record=True)
    assert run.crashed
    return run.result.crash, config, run.program


class TestSignatureStability:
    def test_deterministic(self):
        report, config, program = crash("bc-1.06", 2_000)
        first = compute_signature(report, config, program)
        second = compute_signature(report, config, program)
        assert first == second
        assert first.digest == second.digest

    def test_same_bug_different_interval_same_bucket(self):
        """The dedup property: replay windows differ, signature doesn't."""
        report_a, config_a, program = crash("bc-1.06", 100)
        report_b, config_b, _ = crash("bc-1.06", 2_000)
        assert len(report_a.checkpoints[0]) != len(report_b.checkpoints[0])
        sig_a = compute_signature(report_a, config_a, program)
        sig_b = compute_signature(report_b, config_b, program)
        assert sig_a.digest == sig_b.digest

    def test_same_bug_different_budget_same_bucket(self):
        """Eviction truncates the window but not the crash tail."""
        report_a, config_a, program = crash("tar-1.13.25", 1_000)
        report_b, config_b, _ = crash("tar-1.13.25", 1_000,
                                      log_memory_budget=2_000)
        assert report_b.replay_window(0) < report_a.replay_window(0)
        sig_a = compute_signature(report_a, config_a, program)
        sig_b = compute_signature(report_b, config_b, program)
        assert sig_a.digest == sig_b.digest

    def test_distinct_bugs_distinct_buckets(self):
        report_a, config_a, program_a = crash("bc-1.06", 5_000)
        report_b, config_b, program_b = crash("tar-1.13.25", 5_000)
        sig_a = compute_signature(report_a, config_a, program_a)
        sig_b = compute_signature(report_b, config_b, program_b)
        assert sig_a.digest != sig_b.digest


class TestSignatureContents:
    def test_fields(self):
        report, config, program = crash("bc-1.06", 5_000)
        sig = compute_signature(report, config, program)
        assert sig.program_name == "bc-1.06"
        assert sig.fault_kind == "memory"
        assert sig.fault_pc == report.fault_pc
        assert len(sig.tail_pcs) == 12
        assert sig.short == sig.digest[:12]
        assert len(sig.digest) == 64

    def test_tail_depth_respected(self):
        report, config, program = crash("bc-1.06", 5_000)
        sig = compute_signature(report, config, program, tail_depth=4)
        deep = compute_signature(report, config, program, tail_depth=12)
        assert len(sig.tail_pcs) == 4
        assert sig.tail_pcs == deep.tail_pcs[-4:]
        assert sig.digest != deep.digest

    def test_digest_sensitive_to_every_field(self):
        base = CrashSignature("p", "memory", 0x100, (1, 2, 3))
        for other in (
            CrashSignature("q", "memory", 0x100, (1, 2, 3)),
            CrashSignature("p", "instruction", 0x100, (1, 2, 3)),
            CrashSignature("p", "memory", 0x104, (1, 2, 3)),
            CrashSignature("p", "memory", 0x100, (1, 2, 4)),
        ):
            assert other.digest != base.digest


class TestReplayTail:
    def test_tail_matches_window(self):
        report, config, program = crash("bc-1.06", 5_000)
        tail = replay_tail(report, config, program)
        assert tail.instructions == report.replay_window(0)
        assert tail.end_pc == report.fault_pc
        assert tail.intervals == len(report.checkpoints[0])

    def test_no_logs_raises(self):
        report, config, program = crash("bc-1.06", 5_000)
        report.checkpoints.clear()
        with pytest.raises(ReplayDivergence, match="no replayable chain"):
            replay_tail(report, config, program)
