"""Tests for the sharded on-disk report store."""

import hashlib

import pytest

from repro.common.errors import LogDecodeError
from repro.fleet.store import ReportStore


def digest_of(seed: int) -> str:
    return hashlib.sha256(f"report-{seed}".encode()).hexdigest()


def fill(store, count, size=100, window=0):
    entries = []
    for index in range(count):
        entries.append(store.add(
            digest_of(index), b"x" * size,
            replay_window=window or index,
            fault_kind="memory", program_name="prog",
            observed_at=index,
        ))
    return entries


class TestSharding:
    def test_consistent_assignment(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        digests = [digest_of(i) for i in range(64)]
        first = [store.shard_of(d) for d in digests]
        assert first == [store.shard_of(d) for d in digests]
        assert all(0 <= shard < 4 for shard in first)
        # With 64 keys and 32 virtual points per shard, every shard
        # should see traffic.
        assert len(set(first)) == 4

    def test_growth_remaps_only_a_fraction(self, tmp_path):
        """The consistent-hashing property that justifies the ring."""
        small = ReportStore(tmp_path / "a", num_shards=8)
        large = ReportStore(tmp_path / "b", num_shards=9)
        digests = [digest_of(i) for i in range(512)]
        moved = sum(
            1 for d in digests if small.shard_of(d) != large.shard_of(d)
        )
        # Modulo hashing would remap ~8/9 of keys; the ring moves ~1/9.
        assert moved < len(digests) // 3

    def test_same_signature_same_shard_directory(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        a = store.add(digest_of(1), b"aaa")
        b = store.add(digest_of(1), b"bbb")
        assert a.shard == b.shard
        assert store.path_of(a).parent == store.path_of(b).parent


class TestPersistence:
    def test_reopen_round_trips_index(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        fill(store, 10)
        reopened = ReportStore(tmp_path)
        assert len(reopened) == 10
        assert reopened.total_bytes == store.total_bytes
        assert reopened.entries() == store.entries()
        assert reopened.num_shards == 4

    def test_reopen_with_conflicting_ring_shape_raises(self, tmp_path):
        """The ring shape of an existing store is immutable: silently
        using the on-disk value (the old behavior) hid real
        misconfiguration — the caller believes reports are placed one
        way while the store does something else."""
        store = ReportStore(tmp_path, num_shards=4)
        fill(store, 4)
        with pytest.raises(ValueError, match="num_shards=4"):
            ReportStore(tmp_path, num_shards=16)
        with pytest.raises(ValueError, match="ring_replicas=32"):
            ReportStore(tmp_path, ring_replicas=64)
        # Unspecified (None) inherits the on-disk shape; a *matching*
        # explicit value is not a conflict.
        assert ReportStore(tmp_path).num_shards == 4
        reopened = ReportStore(tmp_path, num_shards=4, ring_replicas=32)
        assert [e.shard for e in reopened.entries()] == \
            [e.shard for e in store.entries()]

    def test_seq_continues_after_reopen(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        fill(store, 3)
        reopened = ReportStore(tmp_path)
        entry = reopened.add(digest_of(99), b"y")
        assert entry.seq == 3

    def test_blob_round_trips(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        entry = store.add(digest_of(7), b"\x00\x01\x02payload")
        assert store.path_of(entry).read_bytes() == b"\x00\x01\x02payload"

    def test_corrupt_index_raises(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        entries = fill(store, 4)
        index = store.path_of(entries[0]).parent / "index.bin"
        index.write_bytes(b"JUNK" + index.read_bytes()[4:])
        with pytest.raises(LogDecodeError, match="magic"):
            ReportStore(tmp_path)

    def test_partial_trailing_record_recovers(self, tmp_path):
        """A crash mid-append must not brick the store: the partial
        record is dropped and ingestion continues with fresh seqs."""
        store = ReportStore(tmp_path, num_shards=1)
        fill(store, 3)
        index = store.root / "shard-00" / "index.bin"
        data = index.read_bytes()
        index.write_bytes(data[:-7])  # torn write inside the last record
        reopened = ReportStore(tmp_path)
        assert [e.seq for e in reopened.entries()] == [0, 1]
        assert reopened.total_bytes == 200
        # The dropped record's seq is never reused.
        assert reopened.add(digest_of(9), b"y").seq == 3


class TestEviction:
    def test_oldest_first(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4, byte_budget=450)
        entries = fill(store, 6, size=100)
        kept = store.entries()
        # 6 x 100 bytes against a 450 budget: the two oldest go.
        assert [e.seq for e in kept] == [2, 3, 4, 5]
        assert store.total_bytes == 400
        assert store.evicted_reports == 2
        assert store.evicted_bytes == 200
        for victim in entries[:2]:
            assert not store.path_of(victim).exists()

    def test_newest_entry_protected(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2, byte_budget=10)
        entry = store.add(digest_of(0), b"z" * 64)
        # Over budget, but the just-added report must survive (mirrors
        # LogStore's protect-the-newest rule).
        assert store.entries() == [entry]

    def test_default_observed_at_orders_across_reopens(self, tmp_path):
        """Separate ingest invocations must evict oldest-first globally,
        not oldest-within-the-latest-batch."""
        store = ReportStore(tmp_path, num_shards=2, byte_budget=350)
        store.add(digest_of(0), b"x" * 100)
        store.add(digest_of(1), b"x" * 100)
        later = ReportStore(tmp_path)  # a second `bugnet ingest` run
        later.add(digest_of(2), b"x" * 100)
        later.add(digest_of(3), b"x" * 100)
        # The batch-1 report (seq 0) goes, not batch 2's own first.
        assert [e.seq for e in later.entries()] == [1, 2, 3]
        assert [e.observed_at for e in later.entries()] == [1, 2, 3]

    def test_orphaned_blob_swept_on_open(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=1)
        entry = store.add(digest_of(0), b"x" * 50)
        orphan = store.path_of(entry).parent / "99999999-deadbeef0000.bugnet"
        orphan.write_bytes(b"leftover from a crash mid-ingest")
        reopened = ReportStore(tmp_path)
        assert not orphan.exists()
        assert reopened.path_of(entry).exists()

    def test_eviction_survives_reopen(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4, byte_budget=450)
        fill(store, 6, size=100)
        reopened = ReportStore(tmp_path)
        assert [e.seq for e in reopened.entries()] == [2, 3, 4, 5]
        assert reopened.evicted_reports == 2
        assert reopened.byte_budget == 450


class TestQueries:
    def test_entries_by_digest(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        store.add(digest_of(1), b"a")
        store.add(digest_of(2), b"b")
        store.add(digest_of(1), b"c")
        assert len(store.entries(digest_of(1))) == 2
        assert len(store.entries(digest_of(2))) == 1
        assert store.signatures() == sorted({digest_of(1), digest_of(2)})


class TestRetentionAndRollups:
    def test_window_evicts_by_observed_at(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4, retention_window=3)
        fill(store, 8)  # observed_at 0..7; cutoff = 7 - 3 = 4
        assert [e.observed_at for e in store.entries()] == [4, 5, 6, 7]
        assert store.evicted_reports == 4

    def test_counts_survive_blob_eviction(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4, retention_window=2)
        for when in range(6):
            store.add(digest_of(0), b"x" * 40, fault_kind="memory",
                      program_name="prog", observed_at=when,
                      race_pcs=(0x10,))
        rollup = store.rollups()[digest_of(0)]
        assert rollup["count"] == 3          # observed_at 0..2 evicted
        assert rollup["bytes"] == 120
        assert rollup["first_seen"] == 0
        assert rollup["last_seen"] == 2
        assert rollup["fault_kind"] == "memory"
        assert rollup["race_pcs"] == [16]
        assert len(store.entries()) == 3     # 3..5 resident

    def test_compact_applies_window_outside_a_commit(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        fill(store, 6)
        assert store.compact() == 0          # no window configured
        windowed = ReportStore(tmp_path, retention_window=2)
        assert windowed.compact() == 3       # observed_at 0..2 go
        assert [e.observed_at for e in windowed.entries()] == [3, 4, 5]
        assert windowed.compact() == 0       # idempotent

    def test_compact_with_explicit_clock(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2, retention_window=10)
        fill(store, 4)                       # observed_at 0..3
        assert store.compact(now=20) == 4    # a real fleet clock moved on
        assert store.entries() == []
        assert sum(s["count"] for s in store.rollups().values()) == 4

    def test_window_persists_in_meta_and_reopen_inherits(self, tmp_path):
        ReportStore(tmp_path, num_shards=4, retention_window=7)
        reopened = ReportStore(tmp_path)
        assert reopened.retention_window == 7

    def test_rollups_merge_across_reopens(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2, retention_window=1)
        for when in range(4):
            store.add(digest_of(0), b"x" * 10, observed_at=when)
        first = store.rollups()[digest_of(0)]["count"]
        assert first == 2
        reopened = ReportStore(tmp_path)
        for when in range(4, 8):
            reopened.add(digest_of(0), b"x" * 10, observed_at=when)
        assert reopened.rollups()[digest_of(0)]["count"] == 6

    def test_route_key_round_trips_through_reopen(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        route = hashlib.sha256(b"route").hexdigest()
        store.add(digest_of(0), b"x" * 10, route_key=route,
                  upload_id="up-0")
        reopened = ReportStore(tmp_path)
        entry = reopened.entry_for_upload("up-0")
        assert entry is not None
        assert entry.route_key == route
