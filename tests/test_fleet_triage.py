"""Tests for triage bucketing, ranking, and representative selection."""

import hashlib

from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets, render_triage


def digest_of(tag) -> str:
    return hashlib.sha256(str(tag).encode()).hexdigest()


def add(store, tag, observed_at, window=10, program="prog", kind="memory"):
    return store.add(
        digest_of(tag), b"x" * 50, replay_window=window,
        fault_kind=kind, program_name=program, observed_at=observed_at,
    )


class TestRanking:
    def test_occurrence_count_ranks_first(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        add(store, "rare", 0)
        for when in range(3):
            add(store, "common", when + 1)
        add(store, "medium", 5)
        add(store, "medium", 6)
        buckets = build_buckets(store)
        assert [b.digest for b in buckets] == [
            digest_of("common"), digest_of("medium"), digest_of("rare"),
        ]
        assert [b.count for b in buckets] == [3, 2, 1]

    def test_recency_breaks_count_ties(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        add(store, "stale", 1)
        add(store, "fresh", 9)
        buckets = build_buckets(store)
        assert [b.digest for b in buckets] == [
            digest_of("fresh"), digest_of("stale"),
        ]

    def test_first_and_last_seen(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        add(store, "bug", 3)
        add(store, "bug", 7)
        add(store, "bug", 5)
        bucket = build_buckets(store)[0]
        assert bucket.first_seen == 3
        assert bucket.last_seen == 7


class TestRepresentative:
    def test_largest_window_wins(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        add(store, "bug", 0, window=100)
        best = add(store, "bug", 1, window=5_000)
        add(store, "bug", 2, window=900)
        assert build_buckets(store)[0].representative == best

    def test_window_ties_pick_oldest(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        first = add(store, "bug", 0, window=100)
        add(store, "bug", 1, window=100)
        assert build_buckets(store)[0].representative == first


class TestRendering:
    def test_table_contents(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        add(store, "bug", 0, window=123, program="gzip-1.2.4")
        text = render_triage(build_buckets(store))
        assert "Crash triage" in text
        assert "gzip-1.2.4" in text
        assert digest_of("bug")[:12] in text
        assert "123" in text

    def test_limit_annotates_overflow(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        for tag in range(5):
            add(store, tag, tag)
        text = render_triage(build_buckets(store), limit=2)
        assert "and 3 more bucket(s)" in text

    def test_to_dict_shape(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        add(store, "bug", 4, window=77)
        payload = build_buckets(store)[0].to_dict()
        assert payload["count"] == 1
        assert payload["representative"]["replay_window"] == 77
        assert payload["signature"] == digest_of("bug")


class TestRollupAwareTriage:
    def _retained_store(self, tmp_path, window):
        return ReportStore(tmp_path, num_shards=4,
                           retention_window=window)

    def test_evicted_occurrences_keep_ranking_the_bucket(self, tmp_path):
        store = self._retained_store(tmp_path, 4)
        # "historic" crashed a lot early, "current" trickles recently.
        for when in range(6):
            add(store, "historic", when)
        for when in (7, 8):
            add(store, "current", when)
        buckets = build_buckets(store)
        historic = next(b for b in buckets
                        if b.digest == digest_of("historic"))
        assert historic.rolled_up > 0
        assert historic.total_count == 6
        assert historic.count == 6 - historic.rolled_up
        # Total count (resident + evicted) outranks the fresher bucket.
        assert buckets[0].digest == digest_of("historic")

    def test_rollup_only_bucket_has_no_representative(self, tmp_path):
        store = self._retained_store(tmp_path, 2)
        add(store, "gone", 0)
        add(store, "fresh", 5)
        add(store, "fresh", 6)
        buckets = build_buckets(store)
        gone = next(b for b in buckets if b.digest == digest_of("gone"))
        assert gone.count == 0
        assert gone.total_count == 1
        assert gone.representative is None
        assert gone.first_seen == 0
        payload = gone.to_dict()
        assert payload["representative"] is None
        assert payload["total_count"] == 1
        rendered = render_triage(buckets)
        assert "(all blobs evicted)" in rendered
        assert "1 (1 evicted)" in rendered  # total (evicted) format

    def test_render_marks_partially_evicted_counts(self, tmp_path):
        store = self._retained_store(tmp_path, 3)
        for when in range(6):
            add(store, "aging", when)
        rendered = render_triage(build_buckets(store))
        assert "6 (2 evicted)" in rendered

    def test_rollups_can_be_excluded(self, tmp_path):
        store = self._retained_store(tmp_path, 2)
        add(store, "gone", 0)
        add(store, "fresh", 5)
        buckets = build_buckets(store, include_rollups=False)
        assert [b.digest for b in buckets] == [digest_of("fresh")]

    def test_race_pcs_union_includes_rollup(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4, retention_window=1)
        store.add(digest_of("racy"), b"x" * 20, fault_kind="race",
                  program_name="prog", observed_at=0, race_pcs=(0x10,))
        store.add(digest_of("racy"), b"x" * 20, fault_kind="race",
                  program_name="prog", observed_at=5, race_pcs=(0x20,))
        bucket = build_buckets(store)[0]
        assert bucket.racy
        assert bucket.race_pcs == (0x10, 0x20)
