"""Unit + property tests for the FLL and MRL log formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import BugNetConfig
from repro.common.errors import LogDecodeError
from repro.tracing.fll import FLLHeader, FLLReader, FLLWriter
from repro.tracing.mrl import MRLEntry, MRLHeader, MRLReader, MRLWriter

CONFIG = BugNetConfig(checkpoint_interval=100_000)
REGS = tuple(range(32))


def header(cid=0):
    return FLLHeader(pid=1, tid=0, cid=cid, timestamp=7, pc=0x400000, regs=REGS)


class TestFLLHeader:
    def test_needs_32_registers(self):
        with pytest.raises(ValueError):
            FLLHeader(pid=1, tid=0, cid=0, timestamp=0, pc=0, regs=(0,) * 31)

    def test_header_bit_size(self):
        bits = header().bit_size(CONFIG)
        # pid(16) + tid + cid + timestamp(64) + pc(32) + 32 regs + major(1)
        expected = 16 + CONFIG.tid_bits + CONFIG.cid_bits + 64 + 32 + 32 * 32 + 1
        assert bits == expected


class TestFLLRecords:
    def test_reduced_lcount_record_size(self):
        writer = FLLWriter(CONFIG, header())
        bits = writer.append(skipped=3, value=0xABCD, dict_index=None)
        # LC-Type(1) + 5 + LV-Type(1) + 32
        assert bits == 39

    def test_encoded_value_record_size(self):
        writer = FLLWriter(CONFIG, header())
        bits = writer.append(skipped=3, value=0, dict_index=5)
        # LC-Type(1) + 5 + LV-Type(1) + 6
        assert bits == 13

    def test_full_lcount_record_size(self):
        writer = FLLWriter(CONFIG, header())
        bits = writer.append(skipped=1000, value=0, dict_index=None)
        assert bits == 1 + CONFIG.full_lcount_bits + 1 + 32

    def test_lcount_threshold_is_32(self):
        # Paper: 5 bits "whenever its value is less than 32".
        writer = FLLWriter(CONFIG, header())
        assert writer.append(31, 0, None) == 39
        assert writer.append(32, 0, None) == 1 + CONFIG.full_lcount_bits + 33

    def test_roundtrip_mixed_records(self):
        writer = FLLWriter(CONFIG, header())
        records = [(0, 0xDEADBEEF, None), (31, 0, 3), (40, 7, None), (2, 0, 63)]
        for skipped, value, index in records:
            writer.append(skipped, value, index)
        fll = writer.finalize(end_ic=500)
        reader = FLLReader(CONFIG, fll)
        decoded = list(reader)
        assert len(decoded) == 4
        assert decoded[0] == (0, False, 0xDEADBEEF)
        assert decoded[1] == (31, True, 3)
        assert decoded[2] == (40, False, 7)
        assert decoded[3] == (2, True, 63)

    def test_reader_stops_at_record_count(self):
        writer = FLLWriter(CONFIG, header())
        writer.append(0, 1, None)
        fll = writer.finalize(end_ic=10)
        reader = FLLReader(CONFIG, fll)
        reader.next_record()
        with pytest.raises(LogDecodeError):
            reader.next_record()

    def test_finalize_records_fault(self):
        writer = FLLWriter(CONFIG, header())
        fll = writer.finalize(end_ic=77, fault_pc=0x400abc)
        assert fll.fault_pc == 0x400ABC
        assert fll.interval_length == 77

    def test_fault_footer_adds_bits(self):
        clean = FLLWriter(CONFIG, header()).finalize(end_ic=1)
        crashed = FLLWriter(CONFIG, header()).finalize(end_ic=1, fault_pc=4)
        assert crashed.bit_size(CONFIG) == clean.bit_size(CONFIG) + 32

    def test_byte_size_rounds_up(self):
        fll = FLLWriter(CONFIG, header()).finalize(end_ic=1)
        assert fll.byte_size(CONFIG) == (fll.bit_size(CONFIG) + 7) // 8

    def test_raw_bits_exceed_compressed(self):
        writer = FLLWriter(CONFIG, header())
        for _ in range(10):
            writer.append(0, 5, 1)  # all dictionary hits
        fll = writer.finalize(end_ic=100)
        assert fll.raw_payload_bits > fll.payload_bits


@settings(max_examples=100, deadline=None)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=99_999),
            st.integers(min_value=0, max_value=2**32 - 1),
            st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
        ),
        max_size=100,
    )
)
def test_fll_roundtrip_property(records):
    """Arbitrary record sequences decode exactly."""
    writer = FLLWriter(CONFIG, header())
    for skipped, value, index in records:
        writer.append(skipped, value, index)
    fll = writer.finalize(end_ic=CONFIG.checkpoint_interval)
    decoded = list(FLLReader(CONFIG, fll))
    assert len(decoded) == len(records)
    for (skipped, value, index), (got_skipped, encoded, raw) in zip(records, decoded):
        assert got_skipped == skipped
        if index is None:
            assert not encoded and raw == value
        else:
            assert encoded and raw == index


class TestMRL:
    def mrl_header(self):
        return MRLHeader(pid=1, tid=2, cid=3, timestamp=99)

    def test_roundtrip(self):
        writer = MRLWriter(CONFIG, self.mrl_header())
        entries = [
            MRLEntry(local_ic=10, remote_tid=1, remote_cid=2, remote_ic=55),
            MRLEntry(local_ic=99_000, remote_tid=63, remote_cid=255,
                     remote_ic=99_999),
        ]
        for entry in entries:
            writer.append(entry)
        mrl = writer.finalize()
        assert list(MRLReader(CONFIG, mrl)) == entries

    def test_entry_bit_width(self):
        writer = MRLWriter(CONFIG, self.mrl_header())
        writer.append(MRLEntry(0, 0, 0, 0))
        mrl = writer.finalize()
        expected = 2 * CONFIG.ic_bits + CONFIG.tid_bits + CONFIG.cid_bits
        assert mrl.payload_bits == expected

    def test_empty_log(self):
        mrl = MRLWriter(CONFIG, self.mrl_header()).finalize()
        assert mrl.num_entries == 0
        assert list(MRLReader(CONFIG, mrl)) == []

    def test_reading_past_end_raises(self):
        mrl = MRLWriter(CONFIG, self.mrl_header()).finalize()
        with pytest.raises(LogDecodeError):
            MRLReader(CONFIG, mrl).next_entry()

    def test_header_size(self):
        bits = self.mrl_header().bit_size(CONFIG)
        assert bits == 16 + CONFIG.tid_bits + CONFIG.cid_bits + 64


@settings(max_examples=100, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=99_999),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=99_999),
        ),
        max_size=50,
    )
)
def test_mrl_roundtrip_property(entries):
    writer = MRLWriter(CONFIG, MRLHeader(pid=1, tid=0, cid=0, timestamp=0))
    expected = [MRLEntry(*fields) for fields in entries]
    for entry in expected:
        writer.append(entry)
    assert list(MRLReader(CONFIG, writer.finalize())) == expected
