"""Dynamic dependence graph construction (repro.forensics.ddg)."""

import pytest

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.forensics.ddg import DDG, AccessIndex, reg_def, reg_uses
from repro.mp.machine import Machine
from repro.replay.replayer import Replayer

# Explicit addressing (la + 0(reg)) keeps one source op = one
# instruction, so node structure is predictable.
SOURCE = """
.data
val: .word 7
out: .word 0
.text
main:
    la   s6, val
    la   s5, out
    li   t0, 5
    lw   t1, 0(s6)
    add  t2, t0, t1
    sw   t2, 0(s5)
    lw   t3, 0(s5)
    blt  t3, t0, skip
    addi t4, t3, 1
skip:
    li   v0, 1
    syscall
"""

T0, T1, T2, T3, T4 = 8, 9, 10, 11, 12


def _record(source, interval=1000, entries=("main",), threads=1):
    program = assemble(source, name="ddg-test")
    machine = Machine(program, MachineConfig(num_cores=max(threads, 1)),
                      BugNetConfig(checkpoint_interval=interval))
    for index in range(threads):
        machine.spawn(entry=entries[min(index, len(entries) - 1)])
    result = machine.run()
    return program, machine, result


@pytest.fixture(scope="module")
def ddg():
    program, machine, result = _record(SOURCE)
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    return DDG.build(program, machine.bugnet, flls)


def _node_with(ddg, op, rd=None):
    """First node whose instruction matches (op, rd)."""
    for index, event in enumerate(ddg.events):
        ins = ddg.program.fetch(event.pc)
        if ins.op == op and (rd is None or ins.rd == rd):
            return index
    raise AssertionError(f"no node with op={op} rd={rd}")


class TestRegisterEdges:
    def test_alu_uses_point_at_defs(self, ddg):
        add = _node_with(ddg, "add", rd=T2)
        deps = dict(ddg.uses_of(add))
        li_t0 = _node_with(ddg, "addi", rd=T0)       # li t0, 5
        lw_t1 = _node_with(ddg, "lw", rd=T1)
        assert deps[T0] == li_t0
        assert deps[T1] == lw_t1

    def test_def_recorded(self, ddg):
        add = _node_with(ddg, "add", rd=T2)
        assert ddg.def_of(add) == T2

    def test_initial_register_origin(self, ddg):
        # The very first instruction reads nothing defined in-window:
        # every register use before any def encodes the initial header.
        first_uses = ddg.uses_of(0)
        for _reg, encoding in first_uses:
            assert encoding == DDG.HEADER

    def test_reg_def_before_timeline(self, ddg):
        add = _node_with(ddg, "add", rd=T2)
        li_t0 = _node_with(ddg, "addi", rd=T0)
        assert ddg.reg_def_before(T0, add) == li_t0
        # Before the li, t0 is the initial register file.
        assert ddg.reg_def_before(T0, li_t0) == DDG.HEADER


class TestMemoryEdges:
    def test_load_after_store_depends_on_it(self, ddg):
        sw = _node_with(ddg, "sw")
        lw_t3 = _node_with(ddg, "lw", rd=T3)
        assert ddg.mem_dep_of(lw_t3) == sw

    def test_first_load_has_no_store_dep(self, ddg):
        lw_t1 = _node_with(ddg, "lw", rd=T1)
        assert ddg.mem_dep_of(lw_t1) is None
        assert ddg.was_first_load(lw_t1)


class TestControlEdges:
    def test_post_branch_node_depends_on_branch(self, ddg):
        blt = _node_with(ddg, "blt")
        addi_t4 = _node_with(ddg, "addi", rd=T4)
        assert ddg.ctrl_dep_of(addi_t4) == blt

    def test_pre_branch_node_has_no_decision(self, ddg):
        # Nothing before the blt is a conditional branch here.
        add = _node_with(ddg, "add", rd=T2)
        assert ddg.ctrl_dep_of(add) is None


SYSCALL_SOURCE = """
.text
main:
    li   a0, 64
    li   v0, 6
    syscall
    move s0, v0
    li   v0, 1
    syscall
"""


class TestIntervalHeaderOrigin:
    def test_syscall_result_is_header_origin(self):
        # sbrk's v0 result exists only in the post-syscall FLL header:
        # the `move s0, v0` use of v0 must resolve to an interval-header
        # origin, not to the `li v0, 6` that preceded the syscall.
        program, machine, result = _record(SYSCALL_SOURCE)
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        assert len(flls) >= 2   # the syscall forces an interval break
        ddg = DDG.build(program, machine.bugnet, flls)
        move = _node_with(ddg, "or", rd=16)   # move s0, v0
        deps = dict(ddg.uses_of(move))
        encoding = deps[2]                       # v0 = r2
        assert encoding < 0
        interval = -encoding - 1
        assert interval >= 1    # not the initial header


PROVENANCE_SOURCE = """
.text
main:
    li   s1, 7
    li   a0, 64
    li   v0, 6
    syscall
    add  t0, s1, v0
    li   v0, 1
    syscall
"""


class TestProvenanceRecency:
    def test_header_materialized_operand_is_most_recent(self):
        # s1 is defined by an early node; v0 is materialized by the
        # post-syscall interval header, which happens *later* in time
        # even though header encodings are negative.  The chain for t0
        # must follow v0 to its interval-header origin, not the stale
        # s1 def.
        from repro.forensics.provenance import value_provenance
        from repro.forensics.slicing import ORIGIN_INTERVAL_HEADER

        program, machine, result = _record(PROVENANCE_SOURCE)
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        ddg = DDG.build(program, machine.bugnet, flls)
        add = _node_with(ddg, "add", rd=T0)
        steps = value_provenance(ddg, index=add + 1, reg=T0)
        origin = steps[-1].origin
        assert origin is not None
        assert origin.kind == ORIGIN_INTERVAL_HEADER
        assert origin.reg == 2   # v0


REMOTE_SOURCE = """
.data
shared:  .word 0
workbuf: .space 256
.text
main:
    la   s0, shared
    li   t0, 1234
    sw   t0, 0(s0)          # local def
    li   s1, 2000
spin:
    lw   t1, 0(s0)          # eventually observes the remote store
    addi s1, s1, -1
    bnez s1, spin
    li   v0, 1
    syscall

writer:
    la   s0, shared
    li   s2, 300
warm:
    addi s2, s2, -1
    bnez s2, warm
    li   t2, 5678
    sw   t2, 0(s0)          # remote def
    li   v0, 1
    syscall
"""


class TestRemoteLoads:
    def test_log_delivered_remote_value_breaks_local_edge(self):
        program, machine, result = _record(
            REMOTE_SOURCE, interval=200, threads=2,
            entries=("main", "writer"))
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        ddg = DDG.build(program, machine.bugnet, flls)
        shared = program.symbols["shared"]
        loads = [i for i, e in enumerate(ddg.events)
                 if e.load is not None and e.load[0] == shared]
        local = [i for i in loads if ddg.events[i].load[1] == 1234]
        remote = [i for i in loads if ddg.events[i].load[1] == 5678]
        assert local and remote, "schedule must interleave the store"
        store = next(i for i, e in enumerate(ddg.events)
                     if e.store is not None and e.store[0] == shared)
        # Loads seeing the local value depend on the local store; loads
        # seeing the remote value must NOT be attributed to it.
        for index in local:
            assert ddg.mem_dep_of(index) == store
        for index in remote:
            assert ddg.mem_dep_of(index) is None
            assert index in ddg.remote_loads


class TestAccessIndex:
    def test_matches_naive_scan(self, ddg):
        events = ddg.events
        index = AccessIndex.from_events(events)
        addresses = {e.load[0] for e in events if e.load} | \
                    {e.store[0] for e in events if e.store}
        for addr in addresses | {0x66660000}:
            naive = []
            for position, event in enumerate(events):
                if event.store is not None and event.store[0] == addr:
                    naive.append((position, "store", event.store[1]))
                elif event.load is not None and event.load[0] == addr:
                    naive.append((position, "load", event.load[1]))
            assert index.accesses(addr) == naive
            for position in range(len(events) + 1):
                expect = naive and max(
                    (entry for entry in naive if entry[0] < position),
                    default=None, key=lambda entry: entry[0])
                expect_value = expect[2] if expect else None
                assert index.value_at(addr, position) == expect_value


class TestUseDefTables:
    def test_reg_uses_covers_isa(self):
        program = assemble(SOURCE, name="ops")
        seen_ops = {program.fetch(pc).op
                    for pc in program.symbols.values() if program.fetch(pc)}
        # Spot checks on the helper tables.
        from repro.arch.isa import Instruction
        assert reg_uses(Instruction("add", rd=3, rs=4, rt=5)) == (4, 5)
        assert reg_uses(Instruction("sw", rs=4, rt=5)) == (4, 5)
        assert reg_uses(Instruction("lw", rd=3, rs=4)) == (4,)
        assert reg_uses(Instruction("lui", rd=3, imm=1)) == ()
        assert reg_uses(Instruction("jr", rs=31)) == (31,)
        assert reg_uses(Instruction("lw", rd=3, rs=0)) == ()   # r0 dropped
        assert reg_def(Instruction("jal", imm=0)) == 31
        assert reg_def(Instruction("sw", rs=4, rt=5)) is None
        assert reg_def(Instruction("beq", rs=4, rt=5)) is None
        assert reg_def(Instruction("add", rd=0, rs=4, rt=5)) is None


class TestSinglePass:
    def test_build_replays_each_interval_once(self, monkeypatch):
        program, machine, result = _record(SOURCE, interval=10)
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        assert len(flls) >= 2
        calls = {"n": 0}
        original = Replayer.replay_interval

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Replayer, "replay_interval", counting)
        ddg = DDG.build(program, machine.bugnet, flls)
        assert calls["n"] == len(flls)
        # Queries replay nothing further.
        before = calls["n"]
        from repro.forensics.slicing import SliceCriterion, backward_slice
        backward_slice(ddg, SliceCriterion(index=len(ddg), reg=T2))
        ddg.reg_def_before(T0, len(ddg))
        assert calls["n"] == before
