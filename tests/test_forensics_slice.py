"""Backward slicing: structure tests + the perturbation soundness property.

The soundness property (the point of a *sound* slice): take a recorded
run, build the DDG, slice backward from "the value of word A at the end
of the window".  Re-execute the program natively, flipping the value
written by one dynamic store.  If that store is **outside** the slice,
the criterion value must be unchanged — no data path reaches it and
every control decision that shaped the executed path is inside the
slice, so the perturbed run executes the identical instruction sequence.
If the perturbed store is the criterion's own defining store (inside the
slice), the criterion value must change.
"""

import pytest

from repro.arch.cpu import CPU
from repro.arch.loader import load_program
from repro.arch.memory import Memory
from repro.common.config import BugNetConfig, MachineConfig
from repro.forensics.ddg import DDG
from repro.forensics.slicing import (
    ORIGIN_FIRST_LOAD,
    SliceCriterion,
    backward_slice,
    slice_from_fault,
)
from repro.mp.machine import Machine
from repro.workloads.randprog import random_program

XOR_MASK = 0x5A5A5A5A


def _record_window(program, interval=500):
    machine = Machine(program, MachineConfig(),
                      BugNetConfig(checkpoint_interval=interval))
    machine.spawn()
    result = machine.run()
    assert not result.crashed
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    return machine, flls


class _PerturbingMemory:
    """Direct memory that XORs the value of one dynamic store."""

    def __init__(self, memory, ordinal, xor):
        self.memory = memory
        self.ordinal = ordinal
        self.xor = xor
        self.stores_seen = 0

    def load(self, addr):
        return self.memory.load(addr)

    def store(self, addr, value):
        if self.stores_seen == self.ordinal:
            value ^= self.xor
        self.stores_seen += 1
        self.memory.store(addr, value)


def _reexecute(program, header, perturb_ordinal=None,
               max_instructions=200_000):
    """Natively re-execute from the first FLL header's context.

    The recorded run is deterministic and single-threaded, so executing
    the binary with properly initialized data memory reproduces the
    exact committed stream — no logs needed.  *perturb_ordinal* flips
    the value of that dynamic store (0-based).
    """
    memory = Memory(fault_checks=False)
    load_program(program, memory)
    interface = (_PerturbingMemory(memory, perturb_ordinal, XOR_MASK)
                 if perturb_ordinal is not None else
                 _PerturbingMemory(memory, -1, 0))
    cpu = CPU(program, interface)
    cpu.pc = header.pc
    cpu.regs.restore(header.regs)
    done = []

    def handler(c):
        if c.regs["v0"] == 1:
            done.append(True)

    cpu.syscall_handler = handler
    while not done and cpu.inst_count < max_instructions:
        cpu.step()
    assert done, "program did not exit"
    return memory


def _property_slice(ddg, addr):
    """Criterion slice for the property: final value of *addr*, plus the
    decision closure of the window end (so a sliced-out store provably
    cannot flip *any* executed branch)."""
    end = len(ddg)
    return backward_slice(
        ddg,
        [SliceCriterion(index=end, addr=addr),
         SliceCriterion(index=end - 1, node=end - 1)],
        control=True,
    )


@pytest.mark.parametrize("seed", [3, 11, 29, 61])
def test_slice_soundness_under_store_perturbation(seed):
    program = random_program(seed)
    machine, flls = _record_window(program)
    ddg = DDG.build(program, machine.bugnet, flls)
    events = ddg.events

    store_nodes = [i for i, e in enumerate(events) if e.store is not None]
    if len(store_nodes) < 3:
        pytest.skip("seed produced too few stores to perturb")
    final_store = store_nodes[-1]
    addr = events[final_store].store[0]

    the_slice = _property_slice(ddg, addr)
    assert final_store in the_slice

    # Reference native execution reproduces the recorded final value.
    baseline = _reexecute(program, flls[0].header)
    original = baseline.peek(addr)
    assert original == events[final_store].store[1]

    out_of_slice = [node for node in store_nodes
                    if node not in the_slice.nodes]
    in_slice = [node for node in store_nodes if node in the_slice.nodes]
    assert in_slice, "criterion store must be in its own slice"

    # Soundness: perturbing any sliced-out store leaves the criterion
    # value untouched.
    for node in out_of_slice[:12]:
        ordinal = store_nodes.index(node)
        perturbed = _reexecute(program, flls[0].header,
                               perturb_ordinal=ordinal)
        assert perturbed.peek(addr) == original, (
            f"seed {seed}: perturbing out-of-slice store #{ordinal} "
            f"(node {node}) changed the criterion value"
        )

    # Relevance: perturbing the criterion's defining store changes it.
    perturbed = _reexecute(program, flls[0].header,
                           perturb_ordinal=store_nodes.index(final_store))
    assert perturbed.peek(addr) != original


@pytest.mark.parametrize("seed", [17, 23])
def test_out_of_slice_fraction_is_nontrivial(seed):
    """The property above is vacuous if the slice swallows every store;
    make sure the generator actually produces dead stores to test."""
    program = random_program(seed)
    machine, flls = _record_window(program)
    ddg = DDG.build(program, machine.bugnet, flls)
    store_nodes = [i for i, e in enumerate(ddg.events)
                   if e.store is not None]
    if len(store_nodes) < 4:
        pytest.skip("too few stores")
    addr = ddg.events[store_nodes[-1]].store[0]
    the_slice = _property_slice(ddg, addr)
    outside = [n for n in store_nodes if n not in the_slice.nodes]
    assert outside, "expected at least one sliced-out store"


SOURCE = """
.data
val: .word 7
out: .word 0
.text
main:
    la   s6, val
    la   s5, out
    li   t0, 5
    lw   t1, 0(s6)
    add  t2, t0, t1
    sw   t2, 0(s5)
    lw   t3, 0(s5)
    blt  t3, t0, skip
    addi t4, t3, 1
skip:
    li   v0, 1
    syscall
"""


class TestSliceStructure:
    @pytest.fixture(scope="class")
    def window(self):
        from repro.arch import assemble

        program = assemble(SOURCE, name="slice-test")
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn()
        result = machine.run()
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        return program, DDG.build(program, machine.bugnet, flls)

    def _node(self, ddg, op, rd=None):
        for index, event in enumerate(ddg.events):
            ins = ddg.program.fetch(event.pc)
            if ins.op == op and (rd is None or ins.rd == rd):
                return index
        raise AssertionError(op)

    def test_data_slice_follows_def_use(self, window):
        program, ddg = window
        t4 = 12
        data = backward_slice(
            ddg, SliceCriterion(index=len(ddg), reg=t4), control=False)
        expected_ops = {"addi", "lw", "sw", "add"}
        ops = {ddg.events[n].op for n in data.nodes}
        assert expected_ops <= ops
        blt = self._node(ddg, "blt")
        assert blt not in data.nodes

    def test_control_slice_adds_decisions(self, window):
        program, ddg = window
        t4 = 12
        full = backward_slice(
            ddg, SliceCriterion(index=len(ddg), reg=t4), control=True)
        blt = self._node(ddg, "blt")
        assert blt in full.nodes

    def test_first_load_origin_reported(self, window):
        program, ddg = window
        t1 = 9
        lw_t1 = self._node(ddg, "lw", rd=t1)
        data = backward_slice(
            ddg, SliceCriterion(index=lw_t1 + 1, reg=t1), control=False)
        kinds = {origin.kind for origin in data.origins}
        assert ORIGIN_FIRST_LOAD in kinds

    def test_addr_criterion_matches_reg_criterion_value_lineage(self, window):
        program, ddg = window
        out = program.symbols["out"]
        by_addr = backward_slice(
            ddg, SliceCriterion(index=len(ddg), addr=out), control=False)
        sw = self._node(ddg, "sw")
        assert sw in by_addr.nodes


class TestFaultSlice:
    def test_fault_slice_contains_defect(self):
        from repro.common.config import BugNetConfig
        from repro.workloads.bugs import BUGS_BY_NAME, run_bug

        bug = BUGS_BY_NAME["tidy-34132-2"]
        config = BugNetConfig(checkpoint_interval=1000)
        run = run_bug(bug, bugnet=config, record=True)
        assert run.crashed
        crash = run.result.crash
        flls = crash.replay_chain(crash.faulting_tid)
        ddg = DDG.build(run.program, config, flls)
        the_slice = slice_from_fault(ddg, run.program, crash.fault_pc,
                                     crash.fault_kind)
        root_pc = run.program.pc_of("root_cause")
        root_line = run.program.source_line_of(root_pc)
        assert root_line in the_slice.source_lines(ddg)
