"""Unit tests for kernel services and scheduler state transitions."""

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.common.errors import Fault
from repro.mp.machine import Machine
from repro.system.kernel import ThreadState


def machine_for(source, threads=1, entries=None, cores=1, **kwargs):
    program = assemble(source)
    machine = Machine(program, MachineConfig(num_cores=cores),
                      BugNetConfig(checkpoint_interval=10_000), **kwargs)
    for index in range(threads):
        entry = entries[index] if entries else "main"
        machine.spawn(entry=entry)
    return machine


class TestSyscalls:
    def test_print_char(self):
        machine = machine_for("""
main:
    li a0, 'H'
    li v0, 3
    syscall
    li a0, 'i'
    li v0, 3
    syscall
    li v0, 1
    syscall
""")
        result = machine.run()
        assert result.console_text == "Hi"

    def test_current_tid(self):
        machine = machine_for("""
main:
    li v0, 10
    syscall
    move a0, v0
    li v0, 1
    syscall
""", threads=3)
        result = machine.run()
        assert result.exit_codes == {0: 0, 1: 1, 2: 2}

    def test_unknown_syscall_faults(self):
        machine = machine_for("main:\n li v0, 99\n syscall")
        result = machine.run()
        assert result.crashed
        assert "unknown syscall" in result.crash.fault_message

    def test_sbrk_zero_returns_current_break(self):
        machine = machine_for("""
main:
    li a0, 16
    li v0, 6
    syscall
    move s0, v0
    li a0, 0
    li v0, 6
    syscall
    sub a0, v0, s0
    li v0, 1
    syscall
""")
        result = machine.run()
        assert result.exit_codes[0] == 16

    def test_exit_code_propagates(self):
        machine = machine_for("main:\n li a0, 42\n li v0, 1\n syscall")
        result = machine.run()
        assert result.exit_codes[0] == 42
        assert machine.kernel.thread(0).state == ThreadState.EXITED

    def test_syscall_count(self):
        machine = machine_for("""
main:
    li v0, 5
    syscall
    li v0, 5
    syscall
    li v0, 1
    syscall
""")
        machine.run()
        assert machine.kernel.syscalls_serviced == 3


class TestLockHandoff:
    SOURCE = """
main:
    li v0, 8
    li a0, 7
    syscall
    li s0, 100
spin:
    addi s0, s0, -1
    bnez s0, spin
    li v0, 9
    li a0, 7
    syscall
    li v0, 1
    syscall
"""

    def test_blocked_thread_wakes_with_ownership(self):
        machine = machine_for(self.SOURCE, threads=2, cores=2)
        result = machine.run()
        assert set(result.exit_codes) == {0, 1}

    def test_handoff_records_sync_edge(self):
        machine = machine_for(self.SOURCE, threads=2, cores=2)
        machine.run()
        assert len(machine.kernel.sync_edges) >= 1
        releaser, rel_ic, acquirer, acq_ic = machine.kernel.sync_edges[0]
        assert {releaser, acquirer} == {0, 1}

    def test_fifo_wakeup_order(self):
        machine = machine_for(self.SOURCE, threads=3, cores=3)
        result = machine.run()
        assert len(result.exit_codes) == 3


class TestSchedulerStates:
    def test_blocked_thread_not_scheduled(self):
        source = """
main:
    li v0, 8
    li a0, 1
    syscall
    b  hold
hold:
    b hold
second:
    li v0, 8
    li a0, 1
    syscall
    li v0, 1
    syscall
"""
        machine = machine_for(source, threads=2, entries=["main", "second"],
                              cores=2)
        result = machine.run(max_instructions=2_000)
        assert result.timed_out  # holder spins forever
        assert machine.kernel.thread(1).state == ThreadState.BLOCKED

    def test_live_includes_blocked(self):
        source = """
main:
    li v0, 8
    li a0, 1
    syscall
    b  hold
hold:
    b hold
second:
    li v0, 8
    li a0, 1
    syscall
    li v0, 1
    syscall
"""
        machine = machine_for(source, threads=2, entries=["main", "second"],
                              cores=2)
        machine.run(max_instructions=1_000)
        live = machine.kernel.live()
        assert len(live) == 2

    def test_crash_freezes_all_threads(self):
        source = """
main:
    lw t0, 0(zero)
worker:
    li s0, 0
w:
    addi s0, s0, 1
    blt s0, 100000, w
    li v0, 1
    syscall
"""
        machine = machine_for(source, threads=2, entries=["main", "worker"],
                              cores=2, collect_traces=False)
        result = machine.run()
        assert result.crashed
        # The worker stopped well short of its loop bound.
        assert machine.kernel.thread(1).cpu.inst_count < 100_000

    def test_seeded_interleave_is_deterministic(self):
        source = """
.data
shared: .word 0
.text
main:
    li  s0, 0
l:
    lw  t0, shared
    addi t0, t0, 1
    sw  t0, shared
    addi s0, s0, 1
    blt s0, 50, l
    li  v0, 1
    syscall
"""
        def final(seed):
            program = assemble(source)
            machine = Machine(program,
                              MachineConfig(num_cores=2, interleave_seed=seed),
                              BugNetConfig(checkpoint_interval=10_000))
            machine.spawn()
            machine.spawn()
            machine.run()
            return machine.memory.peek(program.symbols["shared"])

        assert final(42) == final(42)
