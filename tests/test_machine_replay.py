"""Integration tests: full-system recording and deterministic replay."""

import pytest

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.common.errors import ReplayDivergence
from repro.mp.machine import Machine, run_program
from repro.replay import Replayer, assert_traces_equal

SUM_SOURCE = """
.data
buf: .space 400
.text
main:
    li   s0, 0
    la   s1, buf
    li   s2, 50
fill:
    sll  t0, s0, 2
    add  t0, s1, t0
    mul  t1, s0, s0
    sw   t1, 0(t0)
    addi s0, s0, 1
    blt  s0, s2, fill
    li   s0, 0
    li   s3, 0
total:
    sll  t0, s0, 2
    add  t0, s1, t0
    lw   t1, 0(t0)
    add  s3, s3, t1
    addi s0, s0, 1
    blt  s0, s2, total
    move a0, s3
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""


def record_and_replay(source, interval=50, **machine_kwargs):
    program = assemble(source)
    machine = Machine(
        program, MachineConfig(),
        BugNetConfig(checkpoint_interval=interval),
        collect_traces=True, **machine_kwargs,
    )
    machine.spawn()
    result = machine.run()
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    replays = Replayer(program, machine.bugnet).replay(flls)
    events = [event for replay in replays for event in replay.events]
    return machine, result, replays, events


class TestSingleThreadReplay:
    def test_program_output(self):
        program = assemble(SUM_SOURCE)
        result = run_program(program)
        assert result.console_values == [sum(i * i for i in range(50))]

    def test_replay_reproduces_trace(self):
        machine, result, _, events = record_and_replay(SUM_SOURCE)
        assert_traces_equal(machine.collectors[0], events)

    def test_replay_with_tiny_intervals(self):
        machine, result, replays, events = record_and_replay(SUM_SOURCE, interval=7)
        assert len(replays) > 10
        assert_traces_equal(machine.collectors[0], events)

    def test_replay_with_one_big_interval(self):
        machine, result, replays, events = record_and_replay(
            SUM_SOURCE, interval=1_000_000,
        )
        assert_traces_equal(machine.collectors[0], events)

    def test_intervals_cover_whole_run(self):
        machine, result, replays, _ = record_and_replay(SUM_SOURCE)
        assert sum(r.instructions for r in replays) == result.instructions[0]

    def test_replay_counts_consumed_records(self):
        machine, result, replays, _ = record_and_replay(SUM_SOURCE)
        consumed = sum(r.records_consumed for r in replays)
        logged = machine.recorders[0].loads_logged
        assert consumed == logged

    def test_corrupt_log_detected(self):
        program = assemble(SUM_SOURCE)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1_000_000))
        machine.spawn()
        result = machine.run()
        fll = result.log_store.checkpoints(0)[0].fll
        # Tamper: flip the record count so the replay under-consumes.
        import dataclasses

        broken = dataclasses.replace(fll, num_records=fll.num_records + 3)
        from repro.common.errors import LogDecodeError

        with pytest.raises((ReplayDivergence, LogDecodeError)):
            Replayer(program, machine.bugnet).replay_interval(broken)

    def test_event_sink_streams(self):
        program = assemble(SUM_SOURCE)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=50))
        machine.spawn()
        result = machine.run()
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        seen = []
        Replayer(program, machine.bugnet).replay(
            flls, collect_events=False, event_sink=seen.append,
        )
        assert len(seen) == result.instructions[0]


class TestSyscallBoundaries:
    SOURCE = """
main:
    li   s0, 0
    li   a0, 1
    li   v0, 2
    syscall
    addi s0, s0, 1
    li   a0, 2
    li   v0, 2
    syscall
    move a0, s0
    li   v0, 1
    syscall
"""

    def test_syscalls_terminate_intervals(self):
        program = assemble(self.SOURCE)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1_000_000))
        machine.spawn()
        machine.run()
        reasons = [cp.reason for cp in machine.log_store.checkpoints(0)]
        assert reasons.count("syscall") >= 2

    def test_replay_across_syscalls(self):
        machine, result, _, events = record_and_replay(self.SOURCE)
        assert_traces_equal(machine.collectors[0], events)
        assert result.console_values == [1, 2]
        assert result.exit_codes[0] == 1


class TestPreemption:
    LOOP = """
main:
    li  s0, 0
    li  s1, 500
spin:
    addi s0, s0, 1
    blt  s0, s1, spin
    move a0, s0
    li   v0, 1
    syscall
"""

    def test_timer_preemption_splits_intervals(self):
        program = assemble(self.LOOP)
        machine = Machine(program, MachineConfig(timer_interval=64),
                          BugNetConfig(checkpoint_interval=1_000_000),
                          collect_traces=True)
        machine.spawn()
        result = machine.run()
        reasons = [cp.reason for cp in machine.log_store.checkpoints(0)]
        assert "interrupt" in reasons
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        events = [e for r in Replayer(program, machine.bugnet).replay(flls)
                  for e in r.events]
        assert_traces_equal(machine.collectors[0], events)

    def test_two_threads_share_one_core(self):
        source = """
main:
    li  s0, 0
    li  s1, 200
w:
    addi s0, s0, 1
    blt  s0, s1, w
    move a0, s0
    li   v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(timer_interval=32),
                          BugNetConfig(checkpoint_interval=100_000),
                          collect_traces=True)
        machine.spawn()
        machine.spawn()
        result = machine.run()
        assert result.exit_codes == {0: 200, 1: 200}
        # Both threads' replays must be deterministic despite context
        # switches slicing their intervals.
        for tid in (0, 1):
            flls = [cp.fll for cp in result.log_store.checkpoints(tid)]
            events = [e for r in Replayer(program, machine.bugnet).replay(flls)
                      for e in r.events]
            assert_traces_equal(machine.collectors[tid], events, context=f"t{tid}")


class TestSchedulerEdgeCases:
    def test_yield_round_robins(self):
        source = """
main:
    li  s0, 0
loop:
    li  v0, 5
    syscall
    addi s0, s0, 1
    blt  s0, 3, loop
    li  v0, 10
    syscall
    move a0, v0
    li  v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn()
        machine.spawn()
        result = machine.run()
        assert result.exit_codes == {0: 0, 1: 1}  # CURRENT_TID values

    def test_deadlock_detected(self):
        source = """
main:
    li  v0, 8
    li  a0, 1
    syscall
    li  v0, 8
    li  a0, 2
    syscall
    li  v0, 1
    syscall
second:
    li  v0, 8
    li  a0, 2
    syscall
    li  v0, 8
    li  a0, 1
    syscall
    li  v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(num_cores=2),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn(entry="main")
        machine.spawn(entry="second")
        with pytest.raises(RuntimeError, match="deadlock"):
            machine.run()

    def test_max_instructions_cap(self):
        source = "main: b main"
        program = assemble(source)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn()
        result = machine.run(max_instructions=500)
        assert result.timed_out
        assert result.global_steps == 500
