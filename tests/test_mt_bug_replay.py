"""End-to-end multithreaded bug debugging: the paper's hardest case.

For the multithreaded Table-1 programs, record the crash, then do what a
developer would: replay every thread from its FLLs, stitch the MRL
ordering, and inspect the interaction — all from the shipment alone.
"""

import pytest

from repro.common.config import BugNetConfig
from repro.replay import assert_traces_equal
from repro.replay.races import infer_races, replay_all_threads, sync_constraints
from repro.tracing.serialize import dump_crash_report, load_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

MT_BUGS = ["gaim-0.82.1", "python-2.1.1-1", "python-2.1.1-2", "w3m-0.3.2.2"]


@pytest.mark.parametrize("name", MT_BUGS)
def test_mt_bug_full_pipeline(name):
    bug = BUGS_BY_NAME[name]
    config = BugNetConfig(checkpoint_interval=20_000)
    run = run_bug(bug, bugnet=config, record=True, collect_traces=True)
    assert run.crashed

    # Ship and reload, as the real workflow would.
    report, loaded_config = load_crash_report(
        dump_crash_report(run.result.crash, config)
    )

    # Rebuild a LogStore view from the report for stitching.
    from repro.tracing.backing import LogStore

    store = LogStore(loaded_config)
    for tid in report.thread_ids:
        for checkpoint in report.checkpoints[tid]:
            store.add(tid, checkpoint.fll, checkpoint.mrl,
                      reason=checkpoint.reason)

    programs = {tid: run.program for tid in report.thread_ids}
    replay = replay_all_threads(store, programs, loaded_config)
    for tid in report.thread_ids:
        events = [e for r in replay.per_thread[tid] for e in r.events]
        assert_traces_equal(run.machine.collectors[tid], events,
                            context=f"{name}-t{tid}")
    assert len(replay.schedule) == sum(
        replay.thread_length(tid) for tid in report.thread_ids
    )


def test_gaim_race_on_buddy_slot_detected():
    """gaim's bug IS a data race: the removal and the dereference are
    unsynchronized.  The race inference should flag the buddy slot."""
    bug = BUGS_BY_NAME["gaim-0.82.1"]
    config = BugNetConfig(checkpoint_interval=20_000)
    run = run_bug(bug, bugnet=config, record=True)
    store = run.result.log_store
    programs = {tid: run.program for tid in store.threads()}
    replay = replay_all_threads(store, programs, config)
    races = infer_races(
        replay,
        sync_constraints(replay, run.machine.kernel.sync_edges,
                         run.result.crash.total_instructions),
        max_reports=50,
    )
    buddy_slot = run.program.symbols["buddies"]
    assert any(race.addr == buddy_slot for race in races), races[:5]


def test_napster_dangling_write_visible_in_schedule():
    """The stale-pointer write lands between free and the final read in
    the stitched order — exactly the interleaving a developer needs to
    see to understand the corruption."""
    bug = BUGS_BY_NAME["napster-1.5.2"]
    config = BugNetConfig(checkpoint_interval=50_000)
    run = run_bug(bug, bugnet=config, record=True)
    store = run.result.log_store
    programs = {tid: run.program for tid in store.threads()}
    replay = replay_all_threads(store, programs, config)
    # Find the renderer's stale store of the 0x0BAD0000 marker.
    stale_positions = []
    for tid in store.threads():
        index = 0
        for interval in replay.per_thread[tid]:
            for event in interval.events:
                if event.store is not None and event.store[1] == 0x0BAD0000:
                    stale_positions.append((tid, index))
                index += 1
    assert stale_positions, "stale write not replayed"
    order = {pair: pos for pos, pair in enumerate(replay.schedule)}
    stale_order = min(order[p] for p in stale_positions)
    assert stale_order < len(replay.schedule) - 1
