"""Unit + property tests for the Netzer race-edge reducers."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracing.netzer import PairwiseReducer, VectorClockReducer


class TestPairwiseReducer:
    def test_first_edge_logged(self):
        assert PairwiseReducer().should_log(1, 0, 10) is True

    def test_stale_edge_dropped(self):
        reducer = PairwiseReducer()
        reducer.should_log(1, 0, 10)
        assert reducer.should_log(1, 0, 10) is False
        assert reducer.should_log(1, 0, 5) is False

    def test_advancing_edge_logged(self):
        reducer = PairwiseReducer()
        reducer.should_log(1, 0, 10)
        assert reducer.should_log(1, 0, 11) is True

    def test_new_interval_resets_watermark(self):
        reducer = PairwiseReducer()
        reducer.should_log(1, 0, 10)
        assert reducer.should_log(1, 1, 5) is True  # different remote CID

    def test_per_thread_watermarks_independent(self):
        reducer = PairwiseReducer()
        reducer.should_log(1, 0, 10)
        assert reducer.should_log(2, 0, 5) is True

    def test_reset_clears(self):
        reducer = PairwiseReducer()
        reducer.should_log(1, 0, 10)
        reducer.reset()
        assert reducer.should_log(1, 0, 10) is True


class TestVectorClockReducer:
    def test_direct_duplicate_dropped(self):
        reducer = VectorClockReducer()
        assert reducer.should_log(0, 1, 0, 10) is True
        assert reducer.should_log(0, 1, 0, 10) is False

    def test_transitive_edge_dropped(self):
        # t1 knows t2@(0,10); t0 learns from t1; a direct edge from t2 at
        # an older position is implied and dropped.
        reducer = VectorClockReducer()
        reducer.observe_progress(1, 0, 50)
        assert reducer.should_log(1, 2, 0, 10) is True   # t1 <- t2@10
        assert reducer.should_log(0, 1, 0, 50) is True   # t0 <- t1@50
        assert reducer.should_log(0, 2, 0, 9) is False   # implied

    def test_newer_position_still_logged(self):
        reducer = VectorClockReducer()
        reducer.should_log(1, 2, 0, 10)
        reducer.should_log(0, 1, 0, 50)
        assert reducer.should_log(0, 2, 0, 11) is True

    def test_reset_thread_forgets(self):
        reducer = VectorClockReducer()
        reducer.should_log(0, 1, 0, 10)
        reducer.reset_thread(0)
        assert reducer.should_log(0, 1, 0, 10) is True


def _closure(kept_edges, all_edges):
    """Transitive closure of kept ordering edges plus program order.

    Nodes are every (tid, ic) sampling point mentioned by *any* edge, so
    dropped edges can be checked against the closure; cross-thread edges
    come only from *kept_edges*.
    """
    graph = nx.DiGraph()
    per_thread = {}
    for local_tid, local_ic, remote_tid, remote_ic in all_edges:
        per_thread.setdefault(local_tid, set()).add(local_ic)
        per_thread.setdefault(remote_tid, set()).add(remote_ic)
    for tid, ics in per_thread.items():
        ordered = sorted(ics)
        graph.add_nodes_from((tid, ic) for ic in ordered)
        for a, b in zip(ordered, ordered[1:]):
            graph.add_edge((tid, a), (tid, b))
    for local_tid, local_ic, remote_tid, remote_ic in kept_edges:
        graph.add_edge((remote_tid, remote_ic), (local_tid, local_ic))
    return nx.transitive_closure(graph)


@settings(max_examples=60, deadline=None)
@given(
    raw=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),   # local tid
            st.integers(min_value=0, max_value=2),   # remote tid
            st.integers(min_value=1, max_value=30),  # remote ic
        ).filter(lambda t: t[0] != t[1]),
        max_size=40,
    )
)
def test_pairwise_reduction_preserves_ordering(raw):
    """Dropped edges are always implied by kept ones (soundness).

    Build per-local-thread monotonically increasing local ICs, run the
    pairwise filter, and check the transitive closure of the kept edges
    contains every dropped edge.
    """
    reducers = {tid: PairwiseReducer() for tid in range(3)}
    local_clock = {tid: 0 for tid in range(3)}
    remote_progress = {tid: 0 for tid in range(3)}
    all_edges = []
    kept_edges = []
    for local_tid, remote_tid, advance in raw:
        remote_progress[remote_tid] += advance
        local_clock[local_tid] += 1
        edge = (local_tid, local_clock[local_tid],
                remote_tid, remote_progress[remote_tid])
        all_edges.append(edge)
        if reducers[local_tid].should_log(remote_tid, 0, edge[3]):
            kept_edges.append(edge)
    closure = _closure(kept_edges, all_edges)
    for local_tid, local_ic, remote_tid, remote_ic in all_edges:
        src = (remote_tid, remote_ic)
        dst = (local_tid, local_ic)
        assert closure.has_edge(src, dst) or src == dst, (
            f"dropped edge {src} -> {dst} is not implied by kept edges"
        )
