"""The observability substrate: registry semantics, Prometheus text
exposition invariants, and the multiprocess delta/merge model.

These tests pin the contracts the rest of the fleet relies on:
- histogram exposition is cumulative, ends in ``+Inf``, and its
  ``_count`` equals the ``+Inf`` bucket (scrapers compute quantiles
  from exactly these invariants);
- label values round-trip through escaping;
- ``take_delta`` + ``merge`` is associative and never double-counts,
  which is what makes ProcessPool worker metrics exact;
- a disabled registry records nothing (the <5 % overhead guard in
  ``benchmarks/`` compares against this mode).
"""

import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    SpanRecorder,
    encode_prometheus,
    parse_prometheus,
)
from repro.obs.prom import sample


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRegistry:
    def test_counter_gauge_histogram_basics(self, registry):
        counter = registry.counter("bugnet_test_total", "events", ("kind",))
        counter.labels("a").inc()
        counter.labels("a").inc(2)
        counter.labels("b").inc()
        gauge = registry.gauge("bugnet_test_depth", "depth")
        gauge.set(7)
        gauge.dec(2)
        histogram = registry.histogram(
            "bugnet_test_seconds", "latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert registry.sample_value("bugnet_test_total", ("a",)) == 3
        assert registry.sample_value("bugnet_test_total", ("b",)) == 1
        assert registry.sample_value("bugnet_test_depth") == 5
        assert registry.sample_value("bugnet_test_seconds") == {
            "counts": [1, 1, 1],
            "sum": pytest.approx(5.55),
        }

    def test_define_is_idempotent_but_shape_checked(self, registry):
        first = registry.counter("bugnet_x_total", "x", ("kind",))
        again = registry.counter("bugnet_x_total", "x", ("kind",))
        assert first is again
        with pytest.raises(MetricError):
            registry.counter("bugnet_x_total", "x", ("other",))
        with pytest.raises(MetricError):
            registry.gauge("bugnet_x_total", "x", ("kind",))
        registry.histogram("bugnet_y_seconds", "y", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("bugnet_y_seconds", "y", buckets=(1.0, 3.0))

    def test_bad_names_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("bad-name", "x")
        with pytest.raises(MetricError):
            registry.counter("bugnet_ok_total", "x", ("bad-label",))
        with pytest.raises(MetricError):
            registry.counter("bugnet_ok_total", "x", ("__reserved",))

    def test_counters_only_go_up(self, registry):
        counter = registry.counter("bugnet_up_total", "x")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_label_arity_enforced(self, registry):
        counter = registry.counter("bugnet_l_total", "x", ("a", "b"))
        with pytest.raises(MetricError):
            counter.labels("only-one")

    def test_histogram_bucket_boundary_is_le(self, registry):
        """An observation exactly on a bound lands in that bucket
        (Prometheus ``le`` semantics)."""
        histogram = registry.histogram(
            "bugnet_le_seconds", "x", buckets=(1.0, 2.0)
        )
        histogram.observe(1.0)
        assert registry.sample_value("bugnet_le_seconds")["counts"] == [
            1, 0, 0,
        ]

    def test_explicit_inf_bucket_is_stripped(self, registry):
        histogram = registry.histogram(
            "bugnet_inf_seconds", "x", buckets=(1.0, float("inf"))
        )
        assert histogram.buckets == (1.0,)

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("bugnet_off_total", "x")
        gauge = registry.gauge("bugnet_off_depth", "x")
        histogram = registry.histogram("bugnet_off_seconds", "x")
        counter.inc()
        gauge.set(9)
        histogram.observe(1.0)
        assert registry.sample_value("bugnet_off_total") == 0
        assert registry.sample_value("bugnet_off_depth") == 0
        value = registry.sample_value("bugnet_off_seconds")
        assert sum(value["counts"]) == 0 and value["sum"] == 0

    def test_thread_safety_no_lost_updates(self, registry):
        counter = registry.counter("bugnet_race_total", "x")
        histogram = registry.histogram("bugnet_race_seconds", "x")

        def hammer():
            for _ in range(2_000):
                counter.inc()
                histogram.observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.sample_value("bugnet_race_total") == 8_000
        value = registry.sample_value("bugnet_race_seconds")
        assert sum(value["counts"]) == 8_000


class TestExposition:
    def test_golden_counter_and_gauge(self, registry):
        registry.counter(
            "bugnet_events_total", "Things that happened.", ("outcome",)
        ).labels("accepted").inc(3)
        registry.gauge("bugnet_depth", "Queue depth.").set(2)
        assert encode_prometheus(registry) == (
            "# HELP bugnet_depth Queue depth.\n"
            "# TYPE bugnet_depth gauge\n"
            "bugnet_depth 2\n"
            "# HELP bugnet_events_total Things that happened.\n"
            "# TYPE bugnet_events_total counter\n"
            'bugnet_events_total{outcome="accepted"} 3\n'
        )

    def test_histogram_is_cumulative_with_inf_sum_count(self, registry):
        histogram = registry.histogram(
            "bugnet_h_seconds", "H.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        text = encode_prometheus(registry)
        assert text == (
            "# HELP bugnet_h_seconds H.\n"
            "# TYPE bugnet_h_seconds histogram\n"
            'bugnet_h_seconds_bucket{le="0.1"} 1\n'
            'bugnet_h_seconds_bucket{le="1"} 3\n'
            'bugnet_h_seconds_bucket{le="+Inf"} 4\n'
            "bugnet_h_seconds_sum 6.25\n"
            "bugnet_h_seconds_count 4\n"
        )
        # The invariants a scraper relies on, stated directly: bucket
        # counts are monotone and _count equals the +Inf bucket.
        parsed = parse_prometheus(text)
        buckets = parsed["bugnet_h_seconds_bucket"]
        counts = [
            count for _labels, count in sorted(
                buckets.items(), key=lambda item: dict(item[0])["le"] != "+Inf"
                and float(dict(item[0])["le"]) or float("inf"),
            )
        ]
        assert counts == sorted(counts)
        assert sample(parsed, "bugnet_h_seconds_count") == 4
        assert sample(parsed, "bugnet_h_seconds_bucket", le="+Inf") == 4

    def test_label_escaping_round_trips(self, registry):
        awkward = 'quote " slash \\ newline \n done'
        registry.counter(
            "bugnet_esc_total", "E.", ("label",)
        ).labels(awkward).inc()
        text = encode_prometheus(registry)
        parsed = parse_prometheus(text)
        assert sample(parsed, "bugnet_esc_total", label=awkward) == 1

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all!")

    def test_default_buckets_cover_fleet_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def _observe_workload(registry, scale):
    counter = registry.counter("bugnet_w_total", "w", ("outcome",))
    histogram = registry.histogram(
        "bugnet_w_seconds", "w", buckets=(0.1, 1.0)
    )
    for index in range(scale):
        counter.labels("accepted" if index % 2 else "rejected").inc()
        histogram.observe(0.05 * (index % 40))


class TestDeltaMerge:
    def test_take_delta_zeroes_counters_and_histograms(self):
        registry = MetricsRegistry()
        _observe_workload(registry, 10)
        registry.gauge("bugnet_w_depth", "w").set(3)
        delta = registry.take_delta()
        assert "bugnet_w_total" in delta
        assert "bugnet_w_seconds" in delta
        # Gauges are per-process state, never flow: not in deltas.
        assert "bugnet_w_depth" not in delta
        assert registry.sample_value("bugnet_w_total", ("accepted",)) == 0
        assert sum(
            registry.sample_value("bugnet_w_seconds")["counts"]
        ) == 0
        # The gauge survives untouched.
        assert registry.sample_value("bugnet_w_depth") == 3

    def test_merge_is_associative_and_exact(self):
        """merge(merge(a, b), c) == merge(a, merge(b, c)) == the one
        registry that saw everything — deltas can arrive in any order
        and any grouping."""
        deltas = []
        for scale in (3, 7, 11):
            worker = MetricsRegistry()
            _observe_workload(worker, scale)
            deltas.append(worker.take_delta())

        def merged(order):
            parent = MetricsRegistry()
            for index in order:
                parent.merge(deltas[index])
            return parse_prometheus(encode_prometheus(parent))

        def assert_same(left, right):
            assert left.keys() == right.keys()
            for name in left:
                assert left[name].keys() == right[name].keys(), name
                for key in left[name]:
                    # _sum is a float accumulation: merge order may
                    # shift the last ulp; everything else is integral
                    # and must be exact.
                    assert left[name][key] == pytest.approx(
                        right[name][key]
                    ), (name, key)
                    if not name.endswith("_sum"):
                        assert left[name][key] == right[name][key], (
                            name, key,
                        )

        direct = MetricsRegistry()
        for scale in (3, 7, 11):
            _observe_workload(direct, scale)
        reference = parse_prometheus(encode_prometheus(direct))
        assert_same(merged((0, 1, 2)), reference)
        assert_same(merged((2, 0, 1)), reference)
        assert_same(merged((1, 2, 0)), reference)

    def test_second_delta_carries_only_new_flow(self):
        registry = MetricsRegistry()
        _observe_workload(registry, 5)
        registry.take_delta()
        _observe_workload(registry, 2)
        parent = MetricsRegistry()
        parent.merge(registry.take_delta())
        assert parent.sample_value("bugnet_w_total", ("accepted",)) == 1
        assert parent.sample_value("bugnet_w_total", ("rejected",)) == 1

    def test_merge_rejects_bucket_mismatch(self):
        worker = MetricsRegistry()
        worker.histogram("bugnet_m_seconds", "m", buckets=(1.0,)).observe(0.5)
        delta = worker.take_delta()
        delta["bugnet_m_seconds"]["samples"][()]["counts"].append(9)
        parent = MetricsRegistry()
        with pytest.raises(MetricError):
            parent.merge(delta)


class TestSpanRecorder:
    def test_nested_spans_and_stage_rollup(self):
        recorder = SpanRecorder()
        with recorder.span("replay"):
            with recorder.span("chain-replay", detail="t0"):
                pass
            with recorder.span("chain-replay", detail="t1"):
                pass
            with recorder.span("mrl-merge"):
                pass
        with recorder.span("signature"):
            pass
        assert [span.name for span in recorder.spans] == [
            "chain-replay", "chain-replay", "mrl-merge", "replay",
            "signature",
        ]
        depths = {
            (span.name, span.detail): span.depth for span in recorder.spans
        }
        assert depths[("chain-replay", "t0")] == 1
        assert depths[("replay", "")] == 0
        stages = recorder.stage_ms()
        # Top-level rollup only: nested spans are detail, not stages.
        assert list(stages) == ["replay", "signature"]
        assert recorder.wall_seconds() == pytest.approx(
            sum(s.seconds for s in recorder.spans if s.depth == 0)
        )

    def test_render_mentions_every_stage(self):
        recorder = SpanRecorder()
        with recorder.span("decode"):
            pass
        with recorder.span("replay"):
            with recorder.span("race-inference"):
                pass
        text = recorder.render()
        for name in ("decode", "replay", "race-inference"):
            assert name in text
        # Nested spans are indented under their parent.
        assert "\n  race-inference" in text
