"""Observability of the live service: /metrics exposition, /healthz
readiness, structured admission logging, stage timings on outcomes,
and the client/server counter cross-check `bugnet load-sim` runs.

The process-global REGISTRY accumulates across tests (exactly as it
does in a long-lived service), so every assertion here is on scrape
*deltas*, never absolute values.
"""

import asyncio
import io
import json

import pytest

from repro.fleet.loadsim import (
    crosscheck_metrics,
    fetch_metrics,
    run_load_sim,
    synthesize_corpus,
)
from repro.fleet.service import FleetService, ServiceConfig
from repro.fleet.validate import ResolverSpec
from repro.obs.prom import CONTENT_TYPE, parse_prometheus, sample

CORPUS_BUGS = ("tidy-34132-2", "python-2.1.1-2")

#: Families the dashboards are built on; the scrape must always carry
#: them once traffic has flowed.
CORE_FAMILIES = (
    "bugnet_service_received_total",
    "bugnet_admission_total",
    "bugnet_ack_latency_seconds_bucket",
    "bugnet_ack_latency_seconds_sum",
    "bugnet_ack_latency_seconds_count",
    "bugnet_validate_stage_seconds_bucket",
    "bugnet_validate_outcomes_total",
    "bugnet_connection_bytes_total",
    "bugnet_service_queue_depth",
    "bugnet_service_queue_limit",
    "bugnet_store_reports",
    "bugnet_store_bytes",
    "bugnet_store_shard_reports",
    "bugnet_store_shard_bytes",
    "bugnet_store_commit_batch_seconds_count",
    "bugnet_store_commit_reports_total",
)


@pytest.fixture(scope="module")
def corpus():
    programs, items, failures = synthesize_corpus(
        8, CORPUS_BUGS, seed=3, corrupt=1, intervals=(2_000, 5_000),
        id_prefix="obs",
    )
    assert failures == 0
    return programs, items


async def _http_get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    headers = head.decode().split("\r\n")
    return headers[0], headers[1:], body


def run_service(tmp_path, coro_factory, **service_kwargs):
    config = service_kwargs.pop("config", None) or ServiceConfig(workers=0)

    async def main():
        service = FleetService(
            tmp_path / "store", ResolverSpec(), config, **service_kwargs,
        )
        host, port = await service.start()
        try:
            return await coro_factory(service, host, port)
        finally:
            await service.stop()

    return asyncio.run(main())


def _delta(before, after, name, **labels):
    return sample(after, name, **labels) - sample(before, name, **labels)


class TestMetricsEndpoint:
    def test_scrape_carries_core_families_and_reconciles_stats(
        self, corpus, tmp_path
    ):
        _programs, items = corpus

        async def scenario(service, host, port):
            before = await fetch_metrics(host, port)
            report = await run_load_sim(host, port, items, concurrency=4)
            status, headers, body = await _http_get(host, port, "/metrics")
            after = parse_prometheus(body.decode())
            return before, report, after, status, headers, dict(
                service.counters.to_dict()
            )

        before, report, after, status, headers, counters = run_service(
            tmp_path, scenario
        )
        assert "200" in status
        assert any(
            header.lower() == f"content-type: {CONTENT_TYPE}"
            for header in headers
        )
        for family in CORE_FAMILIES:
            assert family in after, f"missing family {family}"
        # /metrics deltas must agree exactly with what this run did...
        assert _delta(before, after, "bugnet_service_received_total") == len(
            items
        )
        assert _delta(
            before, after, "bugnet_admission_total", outcome="accepted"
        ) == len(report.accepted)
        assert _delta(
            before, after, "bugnet_admission_total", outcome="rejected"
        ) == len(report.rejected)
        assert _delta(
            before, after, "bugnet_ack_latency_seconds_count"
        ) == len(items)
        # ... and with /stats' own counters on the quiesced service
        # (same tallies, two exporters: they may never drift).  The
        # registry is process-global — earlier in-process services
        # fed the same counters — so the fresh service's /stats must
        # equal the scrape *delta*, not the absolute sample.
        assert _delta(
            before, after, "bugnet_service_received_total"
        ) == counters["received"]
        assert _delta(
            before, after, "bugnet_admission_total", outcome="accepted"
        ) == counters["accepted"]
        # Store gauges describe current occupancy, not flow: they must
        # reconcile with the store itself.
        assert sample(after, "bugnet_store_reports") == len(
            report.accepted
        )
        shard_total = sum(
            value
            for key, value in after["bugnet_store_shard_reports"].items()
        )
        assert shard_total == len(report.accepted)
        # Every validation stage observed is one of the named ones —
        # the bounded vocabulary (top-level stages plus the nested
        # replay sub-stages), never a thread id or other unbounded key.
        stage_counts = after.get("bugnet_validate_stage_seconds_count", {})
        stages = {dict(key)["stage"] for key in stage_counts}
        assert stages <= {
            "decode", "resolve", "replay", "chain-replay", "mrl-merge",
            "race-inference", "fault-probe", "signature",
        }
        assert {"replay", "chain-replay"} <= stages

    def test_process_pool_deltas_merge_back(self, corpus, tmp_path):
        """Worker-side validation metrics (stage histograms, outcome
        counters) must travel back to the parent and land in the same
        scrape — the multiprocess merge path end to end."""
        _programs, items = corpus
        config = ServiceConfig(workers=1, validate_chunk=4, admit_cache=False)

        async def scenario(service, host, port):
            before = await fetch_metrics(host, port)
            report = await run_load_sim(host, port, items, concurrency=4)
            after = await fetch_metrics(host, port)
            return before, report, after

        before, report, after = run_service(
            tmp_path, scenario, config=config
        )
        assert _delta(
            before, after, "bugnet_validate_outcomes_total",
            outcome="accepted",
        ) == len(report.accepted)
        assert (
            _delta(before, after, "bugnet_validate_stage_seconds_count",
                   stage="replay")
            > 0
        )


class TestHealthz:
    def test_ready_draining_and_saturated(self, corpus, tmp_path):
        async def scenario(service, host, port):
            states = {}
            states["ready"] = await _http_get(host, port, "/healthz")
            # Saturated admission queue: not ready, explicit reason.
            service._in_pipeline = service.config.queue_limit
            states["saturated"] = await _http_get(host, port, "/healthz")
            service._in_pipeline = 0
            # Draining: the shutdown path flips _stopping first.
            service._stopping = True
            states["draining"] = await _http_get(host, port, "/healthz")
            service._stopping = False
            return states

        states = run_service(tmp_path, scenario)
        status, _headers, body = states["ready"]
        assert "200" in status
        assert json.loads(body) == {"ok": True, "reason": "ok"}
        status, _headers, body = states["saturated"]
        assert "503" in status
        assert json.loads(body) == {
            "ok": False, "reason": "admission queue saturated",
        }
        status, _headers, body = states["draining"]
        assert "503" in status
        assert json.loads(body) == {"ok": False, "reason": "draining"}


class TestStructuredLogging:
    def test_one_admission_event_per_settled_upload(self, corpus, tmp_path):
        _programs, items = corpus
        stream = io.StringIO()
        config = ServiceConfig(workers=0, log_json=True, admit_cache=False)

        async def scenario(service, host, port):
            service._log._stream = stream
            return await run_load_sim(host, port, items, concurrency=2)

        report = run_service(tmp_path, scenario, config=config)
        events = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        admissions = [e for e in events if e["event"] == "admission"]
        assert len(admissions) == len(items)
        by_label = {e["label"]: e for e in admissions}
        for outcome in report.accepted:
            event = by_label[outcome.label]
            assert event["outcome"] == "accepted"
            assert event["upload_id"]
            assert event["ack_ms"] >= 0
            assert len(event["signature"]) == 64
            # Stage timings ride along: the named validate stages.
            assert set(event["stage_ms"]) >= {"decode", "replay"}
        for outcome in report.rejected:
            event = by_label[outcome.label]
            assert event["outcome"] == "rejected"
            assert event["reason"]
        stops = [e for e in events if e["event"] == "service-stop"]
        assert len(stops) == 1
        assert stops[0]["counters"]["received"] == len(items)

    def test_outcomes_carry_stage_ms(self, corpus, tmp_path):
        """stage_ms is attached to the wire response path's outcomes —
        the hook `bugnet profile` and the JSON log share."""
        from repro.fleet.ingest import resolver_from_programs
        from repro.fleet.validate import validate_report

        programs, items = corpus
        resolver = resolver_from_programs(programs)
        label, blob, _uid = next(
            item for item in items if not item[0].startswith("corrupt-")
        )
        outcome = validate_report(label, blob, None, resolver)
        assert set(outcome.stage_ms) >= {
            "decode", "resolve", "replay", "signature",
        }
        assert all(value >= 0 for value in outcome.stage_ms.values())


class TestLoadSimCrossCheck:
    def test_crosscheck_passes_against_live_service(self, corpus, tmp_path):
        _programs, items = corpus

        async def scenario(service, host, port):
            before = await fetch_metrics(host, port)
            report = await run_load_sim(host, port, items, concurrency=4)
            after = await fetch_metrics(host, port)
            return before, report, after

        before, report, after = run_service(tmp_path, scenario)
        mismatches, note = crosscheck_metrics(before, after, report)
        assert not note
        assert mismatches == []

    def test_crosscheck_catches_a_lost_update(self, corpus, tmp_path):
        _programs, items = corpus

        async def scenario(service, host, port):
            before = await fetch_metrics(host, port)
            report = await run_load_sim(host, port, items, concurrency=4)
            after = await fetch_metrics(host, port)
            return before, report, after

        before, report, after = run_service(tmp_path, scenario)
        key = (("outcome", "accepted"),)
        after["bugnet_admission_total"][key] -= 1
        mismatches, note = crosscheck_metrics(before, after, report)
        assert not note
        assert mismatches, "a doctored counter must be flagged"
        assert any("accepted" in m for m in mismatches)
