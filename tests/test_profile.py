"""`bugnet profile`: per-stage validation breakdowns.

The acceptance bar: profiling a multithreaded report breaks its
validation into named stages that together account for >= 95 % of the
wall time — the breakdown must not lie by omission.
"""

import gc
import json

import pytest

from repro.common.config import BugNetConfig
from repro.fleet.ingest import resolver_from_programs
from repro.fleet.profile import profile_blob, render_profile
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


@pytest.fixture(scope="module")
def mt_blob():
    """One multithreaded crash (python-2.1.1-2: two racing threads)
    plus its program resolver."""
    bug = BUGS_BY_NAME["python-2.1.1-2"]
    config = BugNetConfig(checkpoint_interval=2_000)
    run = run_bug(bug, bugnet=config, record=True)
    assert run.crashed
    blob = dump_crash_report(run.result.crash, config)
    resolver = resolver_from_programs({run.result.crash.program_name:
                                       run.program})
    return blob, resolver


class TestProfileBlob:
    def test_mt_stages_cover_95_percent_of_wall(self, mt_blob):
        blob, resolver = mt_blob
        # Pay any pending collection now: a GC pause landing *between*
        # spans (full-suite runs carry ~1k tests of garbage) would
        # deflate coverage on a few-ms report.  repeat keeps the
        # fastest — least-interrupted — run.
        gc.collect()
        result = profile_blob("mt", blob, resolver, repeat=3)
        assert result.accepted
        assert result.coverage >= 0.95, result.to_dict()
        stages = result.recorder.stage_ms()
        assert set(stages) == {
            "decode", "resolve", "replay", "fault-probe", "signature",
        }
        # An MT report's replay decomposes further: one chain-replay
        # span per thread, plus MRL merge and race inference.
        details = {
            (span.name, span.detail) for span in result.recorder.spans
        }
        assert ("chain-replay", "t0") in details
        assert ("chain-replay", "t1") in details
        assert any(name == "mrl-merge" for name, _ in details)
        assert any(name == "race-inference" for name, _ in details)

    def test_repeat_keeps_fastest_run(self, mt_blob):
        blob, resolver = mt_blob
        once = profile_blob("mt", blob, resolver, repeat=1)
        warm = profile_blob("mt", blob, resolver, repeat=3)
        assert warm.accepted
        # Not timing-asserting (CI noise), just that both are complete
        # profiles of the same validation.
        assert once.outcome.signature.digest == warm.outcome.signature.digest

    def test_rejected_report_still_profiles(self, mt_blob):
        blob, resolver = mt_blob
        result = profile_blob("corrupt", blob[:64], resolver)
        assert not result.accepted
        assert "decode" in result.recorder.stage_ms()
        assert "decode" in render_profile(result)

    def test_to_dict_and_render_shapes(self, mt_blob):
        blob, resolver = mt_blob
        result = profile_blob("mt", blob, resolver)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["label"] == "mt"
        assert payload["accepted"] is True
        assert payload["wall_ms"] > 0
        assert payload["coverage"] >= 0.9
        assert len(payload["signature"]) == 64
        span_names = {span["stage"] for span in payload["spans"]}
        assert "chain-replay" in span_names
        text = render_profile(result)
        assert "outcome: accepted" in text
        assert "chain-replay [t0]" in text
        # Bars plus stage percentages render for every top-level stage.
        for stage in payload["stage_ms"]:
            assert stage in text
