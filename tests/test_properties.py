"""Property-based tests for the headline invariants.

The core theorem of the paper — register state at interval start plus
first-load values suffice for deterministic replay — is checked here
over *randomly generated programs*, random checkpoint interval lengths,
and random preemption timing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.assembler import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay import Replayer, assert_traces_equal
from repro.workloads.randprog import random_program, random_source


def record(program, interval, timer=0, digest=False):
    machine = Machine(
        program,
        MachineConfig(timer_interval=timer),
        BugNetConfig(checkpoint_interval=interval),
        collect_traces=True,
        trace_digest_only=digest,
    )
    machine.spawn()
    result = machine.run(max_instructions=200_000)
    assert not result.timed_out
    return machine, result


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       interval=st.sampled_from([3, 17, 100, 1000, 1_000_000]))
def test_record_replay_determinism(seed, interval):
    """Replaying the FLLs reproduces the committed stream, bit for bit."""
    program = random_program(seed)
    machine, result = record(program, interval)
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    replays = Replayer(program, machine.bugnet).replay(flls)
    events = [event for replay in replays for event in replay.events]
    assert_traces_equal(machine.collectors[0], events, context=f"seed={seed}")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       timer=st.sampled_from([13, 64, 257]))
def test_determinism_survives_preemption(seed, timer):
    """Timer interrupts slice intervals arbitrarily; replay still exact."""
    program = random_program(seed)
    machine, result = record(program, interval=500, timer=timer)
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    replays = Replayer(program, machine.bugnet).replay(flls)
    events = [event for replay in replays for event in replay.events]
    assert_traces_equal(machine.collectors[0], events)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_logged_loads_match_consumed_records(seed):
    """Every logged record is consumed exactly once during replay."""
    program = random_program(seed)
    machine, result = record(program, interval=50)
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    replays = Replayer(program, machine.bugnet).replay(flls)
    assert sum(r.records_consumed for r in replays) == \
        machine.recorders[0].loads_logged
    assert sum(f.num_records for f in flls) == machine.recorders[0].loads_logged


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_programs_are_well_defined(seed):
    """The generator's safety contract: no faults, always exits."""
    program = random_program(seed)
    machine, result = record(program, interval=1000)
    assert not result.crashed
    assert 0 in result.exit_codes


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_generator_is_deterministic(seed):
    assert random_source(seed) == random_source(seed)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       interval_a=st.sampled_from([7, 50, 400]),
       interval_b=st.sampled_from([11, 90, 5000]))
def test_interval_length_never_changes_semantics(seed, interval_a, interval_b):
    """Checkpoint interval length is invisible to program behaviour.

    Both the final console output and the replayed event streams must be
    identical across interval configurations.
    """
    program = random_program(seed)
    machine_a, result_a = record(program, interval_a)
    machine_b, result_b = record(program, interval_b)
    assert result_a.console_values == result_b.console_values
    events_a = [
        e for r in Replayer(program, machine_a.bugnet).replay(
            [cp.fll for cp in result_a.log_store.checkpoints(0)]
        ) for e in r.events
    ]
    events_b = [
        e for r in Replayer(program, machine_b.bugnet).replay(
            [cp.fll for cp in result_b.log_store.checkpoints(0)]
        ) for e in r.events
    ]
    assert [(e.pc, e.load, e.store) for e in events_a] == \
        [(e.pc, e.load, e.store) for e in events_b]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_digest_mode_agrees_with_full_traces(seed):
    """The O(1)-memory digest validation accepts exactly what full does."""
    program = random_program(seed)
    machine, result = record(program, interval=64, digest=True)
    flls = [cp.fll for cp in result.log_store.checkpoints(0)]
    replays = Replayer(program, machine.bugnet).replay(flls)
    events = [event for replay in replays for event in replay.events]
    assert_traces_equal(machine.collectors[0], events)
