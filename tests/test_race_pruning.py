"""Equivalence pins for lockset-pruned race inference.

The pruning contract (see ``repro.analysis.static.lockset``): passing
``candidates`` to :func:`~repro.replay.races.infer_races` may only skip
pairs that are statically non-aliasing or ordered by a common lock.  On
lock-free programs — the entire seeded bug suite — the pruned and
unpruned paths must therefore be bit-identical, and every dynamic race
must lie inside the static candidate set (an escape is an analysis
bug, surfaced loudly by the autopsy layer and ``bugnet lint
--verify-races``).
"""

import pytest

from repro.analysis.static.lockset import cached_race_candidates
from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.fleet.validate import race_evidence
from repro.mp.machine import Machine
from repro.replay.races import (
    ReportLogs,
    infer_races,
    replay_all_threads,
    sync_constraints,
)
from repro.workloads.bugs import BUG_SUITE, run_bug

MT_BUGS = [bug for bug in BUG_SUITE if bug.multithreaded]
_CACHE: dict = {}


def crashed_replay(bug):
    """Run *bug* to its crash and replay every thread (cached — the
    module parametrizes several properties over the same executions)."""
    if bug.name not in _CACHE:
        run = run_bug(bug, BugNetConfig(checkpoint_interval=20_000))
        report = run.result.crash
        assert report is not None, f"{bug.name} did not crash"
        replay = replay_all_threads(
            ReportLogs(report, grounded=True),
            {tid: run.program for tid in report.thread_ids},
            run.machine.bugnet, fast=True,
        )
        _CACHE[bug.name] = (run, report, replay)
    return _CACHE[bug.name]


class TestBugSuiteEquivalence:
    @pytest.mark.parametrize("bug", MT_BUGS, ids=[b.name for b in MT_BUGS])
    def test_pruned_equals_unpruned(self, bug):
        run, _report, replay = crashed_replay(bug)
        candidates = cached_race_candidates(run.program)
        assert candidates is not None
        unpruned = infer_races(replay, sync=[])
        pruned = infer_races(replay, sync=[], candidates=candidates)
        assert pruned == unpruned

    @pytest.mark.parametrize("bug", MT_BUGS, ids=[b.name for b in MT_BUGS])
    def test_every_race_is_a_static_candidate(self, bug):
        run, _report, replay = crashed_replay(bug)
        candidates = cached_race_candidates(run.program)
        for race in infer_races(replay, sync=[]):
            assert candidates.may_race(race.first[2], race.second[2]), (
                f"{bug.name}: dynamic race escaped the static set: {race}"
            )

    @pytest.mark.parametrize("bug", MT_BUGS, ids=[b.name for b in MT_BUGS])
    def test_race_evidence_unchanged_by_pruning(self, bug):
        run, report, replay = crashed_replay(bug)
        candidates = cached_race_candidates(run.program)
        faulting = report.faulting_tid
        assert race_evidence(replay, faulting, candidates=candidates) == \
            race_evidence(replay, faulting)


RACY = """
.data
shared: .word 0
.text
main:
    li   s0, 0
    li   s1, 100
loop:
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""

LOCKED = """
.data
shared: .word 0
.text
main:
    li   s0, 0
    li   s1, 30
loop:
    li   v0, 8
    li   a0, 1
    syscall
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    li   v0, 9
    li   a0, 1
    syscall
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""


def run_mp(source, threads=2, interval=300, seed=0):
    program = assemble(source)
    program.thread_entries = tuple("main" for _ in range(threads))
    machine = Machine(
        program,
        MachineConfig(num_cores=threads, interleave_seed=seed),
        BugNetConfig(checkpoint_interval=interval),
        collect_traces=True,
    )
    for _ in range(threads):
        machine.spawn()
    result = machine.run()
    programs = {tid: program for tid in range(threads)}
    replay = replay_all_threads(result.log_store, programs, machine.bugnet)
    return program, machine, replay


class TestSyntheticPrograms:
    def test_racy_program_identical_with_and_without_sync(self):
        program, machine, replay = run_mp(RACY)
        candidates = cached_race_candidates(program)
        assert candidates is not None
        unpruned = infer_races(replay, sync=[])
        assert unpruned  # the unguarded counter really races
        assert infer_races(replay, sync=[], candidates=candidates) == unpruned
        sync = sync_constraints(replay, machine.kernel.sync_edges)
        with_sync = infer_races(replay, sync=sync)
        assert infer_races(
            replay, sync=sync, candidates=candidates) == with_sync

    def test_locked_program_clean_under_sync(self):
        # With the kernel's lock-handoff edges, both paths agree the
        # guarded counter is race-free.
        program, machine, replay = run_mp(LOCKED)
        candidates = cached_race_candidates(program)
        sync = sync_constraints(replay, machine.kernel.sync_edges)
        assert infer_races(replay, sync=sync) == []
        assert infer_races(replay, sync=sync, candidates=candidates) == []

    def test_locked_program_pruning_fixes_unsound_empty_sync(self):
        # Calling infer_races with sync=[] on a lock-guarded program is
        # itself unsound (it ignores the kernel ordering) and
        # over-reports; the lockset candidates restore the truth.  This
        # is the one sanctioned divergence between the two paths.
        program, machine, replay = run_mp(LOCKED)
        candidates = cached_race_candidates(program)
        assert infer_races(replay, sync=[])  # over-reports lock-ordered pairs
        assert infer_races(replay, sync=[], candidates=candidates) == []
