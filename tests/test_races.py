"""Integration tests: multiprocessor recording, MRLs, and race inference."""

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay import assert_traces_equal
from repro.replay.races import (
    infer_races,
    replay_all_threads,
    sync_constraints,
)

RACY = """
.data
shared: .word 0
.text
main:
    li   s0, 0
    li   s1, 100
loop:
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""

LOCKED = """
.data
shared: .word 0
.text
main:
    li   s0, 0
    li   s1, 30
loop:
    li   v0, 8
    li   a0, 1
    syscall
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    li   v0, 9
    li   a0, 1
    syscall
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""


def run_mp(source, threads=2, interval=300, seed=0):
    program = assemble(source)
    machine = Machine(
        program,
        MachineConfig(num_cores=threads, interleave_seed=seed),
        BugNetConfig(checkpoint_interval=interval),
        collect_traces=True,
    )
    for _ in range(threads):
        machine.spawn()
    result = machine.run()
    programs = {tid: program for tid in range(threads)}
    replay = replay_all_threads(result.log_store, programs, machine.bugnet)
    return program, machine, result, replay


class TestMultiThreadReplay:
    def test_per_thread_traces_reproduce(self):
        _, machine, _, replay = run_mp(RACY)
        for tid in (0, 1):
            events = [e for r in replay.per_thread[tid] for e in r.events]
            assert_traces_equal(machine.collectors[tid], events, context=f"t{tid}")

    def test_mrls_generated_for_shared_traffic(self):
        _, _, result, replay = run_mp(RACY)
        assert len(replay.constraints) > 0

    def test_schedule_covers_all_instructions(self):
        _, _, result, replay = run_mp(RACY)
        assert len(replay.schedule) == sum(
            replay.thread_length(tid) for tid in replay.per_thread
        )

    def test_schedule_respects_constraints(self):
        _, _, _, replay = run_mp(RACY)
        position = {}
        for order, (tid, index) in enumerate(replay.schedule):
            position[(tid, index)] = order
        for constraint in replay.constraints:
            releaser = position[(constraint.remote_tid, constraint.remote_index - 1)]
            waiter = position[(constraint.local_tid, constraint.local_index)]
            assert releaser < waiter

    def test_lost_update_visible_in_replay(self):
        # The racy counter loses updates; the replayed final value of
        # `shared` must equal the recorded one (not 2 * iterations).
        program, machine, result, replay = run_mp(RACY)
        shared_addr = program.symbols["shared"]
        recorded_final = machine.memory.peek(shared_addr)
        last_values = []
        for tid in (0, 1):
            for interval in replay.per_thread[tid]:
                for event in interval.events:
                    if event.store and event.store[0] == shared_addr:
                        last_values.append(event.store[1])
        assert recorded_final in last_values
        assert recorded_final < 200  # updates actually lost

    def test_seeded_interleaving_changes_outcome(self):
        _, machine_a, result_a, _ = run_mp(RACY, seed=0)
        _, machine_b, result_b, _ = run_mp(RACY, seed=12345)
        value_a = machine_a.memory.peek(0x10000000)
        value_b = machine_b.memory.peek(0x10000000)
        # Both replays stay deterministic even if outcomes differ.
        assert value_a <= 200 and value_b <= 200


class TestRaceInference:
    def test_unsynchronized_counter_races(self):
        _, machine, result, replay = run_mp(RACY)
        races = infer_races(replay, sync_constraints(replay, machine.kernel.sync_edges))
        assert races, "expected the unsynchronized counter to race"
        addresses = {race.addr for race in races}
        assert 0x10000000 in addresses

    def test_locked_counter_no_races(self):
        program, machine, result, replay = run_mp(LOCKED)
        assert machine.memory.peek(program.symbols["shared"]) == 60
        races = infer_races(replay, sync_constraints(replay, machine.kernel.sync_edges))
        assert races == []

    def test_race_report_format(self):
        _, machine, _, replay = run_mp(RACY)
        races = infer_races(replay, sync_constraints(replay, machine.kernel.sync_edges))
        text = str(races[0])
        assert "race on" in text
        assert "pc=" in text

    def test_sync_edges_recorded_by_kernel(self):
        _, machine, _, _ = run_mp(LOCKED)
        assert machine.kernel.sync_edges
        for rel_tid, rel_ic, acq_tid, acq_ic in machine.kernel.sync_edges:
            assert rel_tid != acq_tid
            assert rel_ic > 0
            assert acq_ic >= 0

    def test_max_reports_cap(self):
        _, machine, _, replay = run_mp(RACY)
        races = infer_races(
            replay, sync_constraints(replay, machine.kernel.sync_edges),
            max_reports=1,
        )
        assert len(races) == 1


SPIN_THEN_READ = """
.data
shared: .word 0
.text
reader:
    li   s0, 300
spin:
    addi s0, s0, -1
    bnez s0, spin
    lw   t0, shared
    move a0, t0
    li   v0, 1
    syscall
writer:
    li   t0, 7
    sw   t0, shared
    li   v0, 1
    syscall
"""


class TestStalePiggybackRegression:
    """A descheduled thread's closed interval must not be piggybacked.

    The writer thread stores to ``shared`` and exits while the reader
    spins; the reader's later load pulls the block from the writer's
    core, whose coherence reply must *not* carry the writer's closed
    (CID, IC) — MRL entries pointing at closed intervals break replay
    once the C-ID is recycled.
    """

    def _run(self):
        program = assemble(SPIN_THEN_READ)
        machine = Machine(
            program,
            MachineConfig(num_cores=2),
            BugNetConfig(checkpoint_interval=300),
        )
        machine.spawn(entry="reader")
        machine.spawn(entry="writer")
        result = machine.run()
        return machine, result

    def test_no_mrl_entry_for_exited_thread(self):
        machine, result = self._run()
        # The writer exits long before the reader touches `shared`.
        assert machine.memory.peek(machine.program.symbols["shared"]) == 7
        assert result.exit_codes[0] == 7  # the reader saw the store
        from repro.tracing.mrl import MRLReader

        reader_entries = [
            entry
            for cp in result.log_store.checkpoints(0)
            for entry in MRLReader(machine.bugnet, cp.mrl)
        ]
        assert reader_entries == [], (
            "reader logged a race edge against the writer's closed interval"
        )

    def test_remote_state_sentinel_for_idle_core(self):
        machine, _ = self._run()
        # Both threads exited: neither core has an open interval left.
        assert machine.remote_state_of(0) is None
        assert machine.remote_state_of(1) is None

    def test_resident_thread_state_still_piggybacked(self):
        # Sanity: concurrent sharing still produces MRL entries, so the
        # sentinel only suppresses the stale case.
        _, _, result, replay = run_mp(RACY)
        assert len(replay.constraints) > 0


class TestFourThreads:
    def test_four_way_replay(self):
        _, machine, result, replay = run_mp(RACY, threads=4, interval=500)
        for tid in range(4):
            events = [e for r in replay.per_thread[tid] for e in r.events]
            assert_traces_equal(machine.collectors[tid], events, context=f"t{tid}")
        assert len(replay.schedule) == sum(
            replay.thread_length(tid) for tid in range(4)
        )
