"""Unit tests for the race-machinery internals (constraints, schedules)."""

import pytest

from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.common.errors import ReplayDivergence
from repro.mp.machine import Machine
from repro.replay.races import (
    Constraint,
    MultiThreadReplay,
    _merge_schedule,
    replay_all_threads,
    sync_constraints,
)
from repro.replay.replayer import IntervalReplay
from repro.tracing.fll import FLLHeader, FLLWriter


def fake_replay(tid, lengths):
    """Build a MultiThreadReplay with empty events of given lengths."""
    config = BugNetConfig(checkpoint_interval=1000)
    intervals = []
    for cid, length in enumerate(lengths):
        writer = FLLWriter(config, FLLHeader(
            pid=1, tid=tid, cid=cid, timestamp=cid, pc=0,
            regs=tuple([0] * 32),
        ))
        fll = writer.finalize(end_ic=length)
        replay = IntervalReplay(fll=fll)
        replay.events = [None] * length
        intervals.append(replay)
    return intervals


def build(lengths_by_tid, constraints):
    replay = MultiThreadReplay(
        per_thread={tid: fake_replay(tid, lengths)
                    for tid, lengths in lengths_by_tid.items()},
        constraints=constraints,
    )
    replay.schedule = _merge_schedule(replay)
    return replay


class TestMergeSchedule:
    def test_unconstrained_covers_everything(self):
        replay = build({0: [5], 1: [3]}, [])
        assert len(replay.schedule) == 8
        assert set(replay.schedule) == {(0, i) for i in range(5)} | {
            (1, i) for i in range(3)
        }

    def test_constraint_orders_instructions(self):
        # t1's instruction 0 must wait until t0 completed 4 instructions.
        constraint = Constraint(local_tid=1, local_index=0,
                                remote_tid=0, remote_index=4)
        replay = build({0: [5], 1: [3]}, [constraint])
        positions = {pair: order for order, pair in enumerate(replay.schedule)}
        assert positions[(0, 3)] < positions[(1, 0)]

    def test_chained_constraints(self):
        constraints = [
            Constraint(1, 0, 0, 2),   # t1@0 waits for t0 to finish 2
            Constraint(0, 3, 1, 2),   # t0@3 waits for t1 to finish 2
        ]
        replay = build({0: [5], 1: [3]}, constraints)
        positions = {pair: order for order, pair in enumerate(replay.schedule)}
        assert positions[(0, 1)] < positions[(1, 0)]
        assert positions[(1, 1)] < positions[(0, 3)]

    def test_cycle_detected(self):
        constraints = [
            Constraint(1, 0, 0, 5),   # t1@0 waits for all of t0
            Constraint(0, 0, 1, 3),   # t0@0 waits for all of t1
        ]
        with pytest.raises(ReplayDivergence, match="cycle"):
            build({0: [5], 1: [3]}, constraints)

    def test_thread_length_spans_intervals(self):
        replay = build({0: [5, 7], 1: [3]}, [])
        assert replay.thread_length(0) == 12


class TestSyncConstraints:
    def test_basic_conversion(self):
        replay = build({0: [10], 1: [10]}, [])
        edges = [(0, 5, 1, 3)]  # t0 released after 5; t1 acquired at idx 3
        constraints = sync_constraints(replay, edges)
        assert constraints == [Constraint(local_tid=1, local_index=3,
                                          remote_tid=0, remote_index=5)]

    def test_eviction_offsets_applied(self):
        replay = build({0: [10], 1: [10]}, [])
        # Thread 0 actually ran 30 instructions; 20 were evicted.
        totals = {0: 30, 1: 10}
        edges = [(0, 25, 1, 3)]
        constraints = sync_constraints(replay, edges, totals)
        assert constraints[0].remote_index == 5

    def test_pre_window_edges_dropped(self):
        replay = build({0: [10], 1: [10]}, [])
        totals = {0: 30, 1: 10}
        edges = [(0, 15, 1, 3)]  # release happened in the evicted prefix
        assert sync_constraints(replay, edges, totals) == []

    def test_unknown_thread_skipped(self):
        replay = build({0: [10]}, [])
        assert sync_constraints(replay, [(7, 5, 0, 1)]) == []


class TestEvictedIntervalConstraints:
    def test_mrl_referencing_evicted_interval_skipped(self):
        """With a tight budget, MRL entries can point at evicted remote
        intervals; stitching must drop them rather than crash."""
        source = """
.data
shared: .word 0
.text
main:
    li   s0, 0
    li   s1, 300
loop:
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(
            program, MachineConfig(num_cores=2),
            BugNetConfig(checkpoint_interval=100, log_memory_budget=4_000),
            collect_traces=True,
        )
        machine.spawn()
        machine.spawn()
        result = machine.run()
        assert result.log_store.evicted_checkpoints > 0
        replay = replay_all_threads(result.log_store,
                                    {0: program, 1: program}, machine.bugnet)
        # The retained suffix replays and schedules without error.
        assert len(replay.schedule) == sum(
            replay.thread_length(tid) for tid in replay.per_thread
        )


class TestEventAt:
    def test_event_lookup_across_intervals(self):
        replay = build({0: [3, 4]}, [])
        # Patch in distinguishable events.
        for interval_index, interval in enumerate(replay.per_thread[0]):
            interval.events = [
                (interval_index, position)
                for position in range(interval.fll.end_ic)
            ]
        assert replay.event_at(0, 0) == (0, 0)
        assert replay.event_at(0, 2) == (0, 2)
        assert replay.event_at(0, 3) == (1, 0)
        assert replay.event_at(0, 6) == (1, 3)
        with pytest.raises(IndexError):
            replay.event_at(0, 7)
