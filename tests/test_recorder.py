"""Unit tests for the BugNet recorder's interval lifecycle and logging."""

import pytest

from repro.cache.hierarchy import FirstLoadHierarchy
from repro.common.config import BugNetConfig, CacheConfig
from repro.tracing.backing import LogStore
from repro.tracing.fll import FLLReader
from repro.tracing.recorder import BugNetRecorder

L1 = CacheConfig(size=512, associativity=2, block_size=64)
L2 = CacheConfig(size=2048, associativity=4, block_size=64)
REGS = tuple(range(32))


def make_recorder(interval=100, **config_kwargs):
    config = BugNetConfig(checkpoint_interval=interval, **config_kwargs)
    hierarchy = FirstLoadHierarchy(L1, L2)
    store = LogStore(config)
    recorder = BugNetRecorder(config, hierarchy, store)
    return recorder, hierarchy, store, config


def record_load(recorder, hierarchy, addr, value):
    first = hierarchy.access(addr, is_store=False)
    recorder.note_load(value, first)
    recorder.note_commit()


class TestIntervalLifecycle:
    def test_begin_requires_inactive(self):
        recorder, *_ = make_recorder()
        recorder.begin_interval(0, REGS)
        with pytest.raises(RuntimeError):
            recorder.begin_interval(0, REGS)

    def test_interval_closes_at_max_length(self):
        recorder, _, store, _ = make_recorder(interval=3)
        recorder.begin_interval(0x400000, REGS)
        for _ in range(3):
            recorder.note_commit()
        assert not recorder.active
        assert store.checkpoints(0)[0].fll.interval_length == 3

    def test_header_captures_state(self):
        recorder, _, store, _ = make_recorder()
        regs = tuple(range(100, 132))
        recorder.begin_interval(0x400abc, regs)
        recorder.note_commit()
        recorder.end_interval("interrupt")
        header = store.checkpoints(0)[0].fll.header
        assert header.pc == 0x400ABC
        assert header.regs == regs

    def test_cid_increments_and_wraps(self):
        recorder, _, store, config = make_recorder(
            interval=1, max_resident_checkpoints=4,
        )
        for _ in range(6):
            recorder.begin_interval(0, REGS)
            recorder.note_commit()
        cids = [cp.fll.header.cid for cp in store.checkpoints(0)]
        assert cids == [0, 1, 2, 3, 0, 1]

    def test_end_interval_idempotent(self):
        recorder, *_ = make_recorder()
        recorder.begin_interval(0, REGS)
        recorder.end_interval("syscall")
        recorder.end_interval("syscall")  # no-op, no error
        assert recorder.intervals_closed == 1

    def test_fault_pc_recorded(self):
        recorder, _, store, _ = make_recorder()
        recorder.begin_interval(0, REGS)
        recorder.note_commit()
        recorder.end_interval("fault", fault_pc=0xDEAD)
        assert store.checkpoints(0)[0].fll.fault_pc == 0xDEAD

    def test_commit_outside_interval_rejected(self):
        recorder, *_ = make_recorder()
        with pytest.raises(RuntimeError):
            recorder.note_commit()

    def test_note_commits_batches(self):
        recorder, _, store, _ = make_recorder(interval=10)
        recorder.begin_interval(0, REGS)
        leftover = recorder.note_commits(25)
        assert leftover == 15
        assert not recorder.active
        recorder.begin_interval(0, REGS)
        leftover = recorder.note_commits(leftover)
        assert leftover == 5
        recorder.begin_interval(0, REGS)
        assert recorder.note_commits(leftover) == 0
        assert recorder.active
        assert recorder.ic == 5

    def test_interval_listener_fires(self):
        recorder, *_ = make_recorder()
        seen = []
        recorder.interval_listener = lambda fll, mrl, reason: seen.append(reason)
        recorder.begin_interval(0, REGS)
        recorder.end_interval("interrupt")
        assert seen == ["interrupt"]


class TestFirstLoadLogging:
    def test_only_first_loads_logged(self):
        recorder, hierarchy, store, _ = make_recorder()
        recorder.begin_interval(0, REGS)
        record_load(recorder, hierarchy, 0x1000, 5)
        record_load(recorder, hierarchy, 0x1000, 5)
        record_load(recorder, hierarchy, 0x1000, 5)
        recorder.end_interval("shutdown")
        assert store.checkpoints(0)[0].fll.num_records == 1
        assert recorder.loads_seen == 3
        assert recorder.loads_logged == 1

    def test_lcount_counts_skipped_loads(self):
        recorder, hierarchy, store, config = make_recorder()
        recorder.begin_interval(0, REGS)
        record_load(recorder, hierarchy, 0x1000, 5)   # logged, skipped=0
        record_load(recorder, hierarchy, 0x1000, 5)   # skipped
        record_load(recorder, hierarchy, 0x1000, 5)   # skipped
        record_load(recorder, hierarchy, 0x2000, 9)   # logged, skipped=2
        recorder.end_interval("shutdown")
        fll = store.checkpoints(0)[0].fll
        records = list(FLLReader(config, fll))
        assert records[0][0] == 0
        assert records[1][0] == 2

    def test_bits_reset_each_interval(self):
        recorder, hierarchy, store, _ = make_recorder(interval=2)
        recorder.begin_interval(0, REGS)
        record_load(recorder, hierarchy, 0x1000, 5)
        record_load(recorder, hierarchy, 0x1000, 5)  # closes interval
        recorder.begin_interval(0, REGS)
        record_load(recorder, hierarchy, 0x1000, 5)  # first again: re-log
        recorder.end_interval("shutdown")
        checkpoints = store.checkpoints(0)
        assert checkpoints[0].fll.num_records == 1
        assert checkpoints[1].fll.num_records == 1

    def test_store_first_suppresses_logging(self):
        recorder, hierarchy, store, _ = make_recorder()
        recorder.begin_interval(0, REGS)
        hierarchy.access(0x1000, is_store=True)
        recorder.note_commit()
        record_load(recorder, hierarchy, 0x1000, 5)
        recorder.end_interval("shutdown")
        assert store.checkpoints(0)[0].fll.num_records == 0

    def test_dictionary_encoded_value(self):
        recorder, hierarchy, store, config = make_recorder()
        recorder.begin_interval(0, REGS)
        record_load(recorder, hierarchy, 0x1000, 42)   # miss: full value
        record_load(recorder, hierarchy, 0x2000, 42)   # hit: 6-bit index
        recorder.end_interval("shutdown")
        records = list(FLLReader(config, store.checkpoints(0)[0].fll))
        assert records[0][1] is False and records[0][2] == 42
        assert records[1][1] is True  # encoded

    def test_first_load_rate(self):
        recorder, hierarchy, _, _ = make_recorder()
        recorder.begin_interval(0, REGS)
        record_load(recorder, hierarchy, 0x1000, 1)
        record_load(recorder, hierarchy, 0x1000, 1)
        assert recorder.first_load_rate == 0.5


class TestRaceLogging:
    def test_race_reply_logged(self):
        recorder, _, store, _ = make_recorder()
        recorder.begin_interval(0, REGS)
        recorder.note_commit()
        recorder.race_reply(remote_tid=1, remote_cid=0, remote_ic=50)
        recorder.end_interval("shutdown")
        assert store.checkpoints(0)[0].mrl.num_entries == 1

    def test_netzer_filter_applies(self):
        recorder, *_ = make_recorder()
        recorder.begin_interval(0, REGS)
        recorder.race_reply(1, 0, 50)
        recorder.race_reply(1, 0, 50)   # implied
        recorder.race_reply(1, 0, 40)   # implied
        recorder.race_reply(1, 0, 60)   # advances
        recorder.end_interval("shutdown")
        store = recorder.log_store
        assert store.checkpoints(0)[0].mrl.num_entries == 2

    def test_reducer_resets_per_interval(self):
        recorder, _, store, _ = make_recorder(interval=100)
        recorder.begin_interval(0, REGS)
        recorder.race_reply(1, 0, 50)
        recorder.end_interval("interrupt")
        recorder.begin_interval(0, REGS)
        recorder.race_reply(1, 0, 50)   # must log again: new interval
        recorder.end_interval("shutdown")
        assert store.checkpoints(0)[1].mrl.num_entries == 1

    def test_remote_state_reflects_progress(self):
        recorder, *_ = make_recorder()
        recorder.begin_interval(0, REGS)
        recorder.note_commit()
        recorder.note_commit()
        tid, cid, ic = recorder.remote_state()
        assert (tid, cid, ic) == (0, 0, 2)

    def test_race_reply_outside_interval_ignored(self):
        recorder, *_ = make_recorder()
        recorder.race_reply(1, 0, 5)  # silently dropped, no crash
