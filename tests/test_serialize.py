"""Tests for the crash-report on-disk format."""

import pytest

from repro.common.config import BugNetConfig
from repro.common.errors import LogDecodeError
from repro.replay import Replayer, assert_traces_equal
from repro.tracing.mrl import MRLReader
from repro.tracing.serialize import (
    dump_crash_report,
    load_crash_report,
    read_crash_report,
    save_crash_report,
)
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


@pytest.fixture(scope="module")
def crashed():
    bug = BUGS_BY_NAME["tar-1.13.25"]
    config = BugNetConfig(checkpoint_interval=2_000, bit_clear_period=1)
    run = run_bug(bug, bugnet=config, record=True, collect_traces=True)
    assert run.crashed
    return run, config


class TestRoundTrip:
    def test_metadata_survives(self, crashed):
        run, config = crashed
        data = dump_crash_report(run.result.crash, config)
        loaded, loaded_config = load_crash_report(data)
        original = run.result.crash
        assert loaded.fault_kind == original.fault_kind
        assert loaded.fault_pc == original.fault_pc
        assert loaded.fault_message == original.fault_message
        assert loaded.faulting_tid == original.faulting_tid
        assert loaded.program_name == original.program_name
        assert loaded.mapped_pages == original.mapped_pages
        assert loaded.total_instructions == original.total_instructions
        assert loaded_config == config

    def test_checkpoints_survive(self, crashed):
        run, config = crashed
        loaded, _ = load_crash_report(dump_crash_report(run.result.crash, config))
        original = run.result.crash
        assert loaded.thread_ids == original.thread_ids
        for tid in original.thread_ids:
            old = original.checkpoints[tid]
            new = loaded.checkpoints[tid]
            assert len(old) == len(new)
            for a, b in zip(old, new):
                assert a.fll.header == b.fll.header
                assert a.fll.payload == b.fll.payload
                assert a.fll.num_records == b.fll.num_records
                assert a.fll.end_ic == b.fll.end_ic
                assert a.fll.fault_pc == b.fll.fault_pc
                assert a.reason == b.reason

    def test_mrls_survive(self, crashed):
        run, config = crashed
        loaded, loaded_config = load_crash_report(
            dump_crash_report(run.result.crash, config)
        )
        original = run.result.crash
        for tid in original.thread_ids:
            for a, b in zip(original.checkpoints[tid], loaded.checkpoints[tid]):
                assert list(MRLReader(config, a.mrl)) == \
                    list(MRLReader(loaded_config, b.mrl))

    def test_replay_from_loaded_report(self, crashed):
        """The real test: a developer replays from the file alone."""
        run, config = crashed
        loaded, loaded_config = load_crash_report(
            dump_crash_report(run.result.crash, config)
        )
        tid = loaded.faulting_tid
        replays = Replayer(run.program, loaded_config).replay(
            loaded.flls_for(tid)
        )
        events = [e for r in replays for e in r.events]
        assert_traces_equal(run.machine.collectors[tid], events)

    def test_file_roundtrip(self, crashed, tmp_path):
        run, config = crashed
        path = tmp_path / "crash.bugnet"
        written = save_crash_report(path, run.result.crash, config)
        assert path.stat().st_size == written
        loaded, _ = read_crash_report(path)
        assert loaded.fault_pc == run.result.crash.fault_pc


class TestConfigRoundTrip:
    """VERSION 2 serializes the complete recorder configuration."""

    FULL_CONFIG = BugNetConfig(
        checkpoint_interval=2_000,
        reduced_lcount_bits=4,
        checkpoint_buffer_bytes=8 * 1024,
        race_buffer_bytes=4 * 1024,
        log_memory_budget=123_456,
        max_live_threads=16,
        max_resident_checkpoints=32,
        bit_clear_period=1,
    )

    def test_non_default_config_survives(self, crashed):
        run, _ = crashed
        data = dump_crash_report(run.result.crash, self.FULL_CONFIG)
        _, loaded_config = load_crash_report(data)
        assert loaded_config == self.FULL_CONFIG

    def test_none_budget_survives(self, crashed):
        run, config = crashed
        assert config.log_memory_budget is None
        _, loaded_config = load_crash_report(
            dump_crash_report(run.result.crash, config)
        )
        assert loaded_config.log_memory_budget is None
        assert loaded_config == config

    def test_version_1_still_loads_with_default_gaps(self, crashed):
        # A v1 report (legacy writer) drops the buffer sizes and budget;
        # loading substitutes the defaults for exactly those fields.
        run, _ = crashed
        data = dump_crash_report(run.result.crash, self.FULL_CONFIG, version=1)
        loaded, loaded_config = load_crash_report(data)
        defaults = BugNetConfig()
        assert loaded_config.checkpoint_interval == 2_000
        assert loaded_config.reduced_lcount_bits == 4
        assert loaded_config.max_live_threads == 16
        assert loaded_config.checkpoint_buffer_bytes == defaults.checkpoint_buffer_bytes
        assert loaded_config.race_buffer_bytes == defaults.race_buffer_bytes
        assert loaded_config.log_memory_budget is None
        assert loaded.fault_pc == run.result.crash.fault_pc

    def test_unknown_write_version_rejected(self, crashed):
        run, config = crashed
        with pytest.raises(ValueError):
            dump_crash_report(run.result.crash, config, version=3)


class TestFormatSafety:
    def test_bad_magic_rejected(self):
        with pytest.raises(LogDecodeError, match="magic"):
            load_crash_report(b"NOPE" + b"\x00" * 32)

    def test_bad_version_rejected(self, crashed):
        run, config = crashed
        data = bytearray(dump_crash_report(run.result.crash, config))
        data[4] = 0xFF  # clobber the version field
        with pytest.raises(LogDecodeError, match="version"):
            load_crash_report(bytes(data))

    def test_truncated_report_rejected(self, crashed):
        run, config = crashed
        data = dump_crash_report(run.result.crash, config)
        with pytest.raises(Exception):
            load_crash_report(data[: len(data) // 2])

    def test_compressed_smaller_than_logs(self, crashed):
        run, config = crashed
        data = dump_crash_report(run.result.crash, config)
        # zlib should not balloon the shipment.
        assert len(data) < 4 * run.result.crash.total_bytes(config) + 4096
