"""Mid-run service restart: zero accepted-report loss, zero duplication.

The acceptance scenario: `bugnet load-sim` drives a real `bugnet serve`
subprocess; the service is SIGKILLed mid-run and restarted on the same
store and port; uploaders ride through it by reconnecting and retrying
under their stable upload_ids.  Afterwards every upload the client saw
*accepted* must be in the store exactly once — acks only follow durable
commits (no loss), and the persisted upload_id index makes retries
idempotent (no duplication).
"""

import asyncio
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fleet.loadsim import run_load_sim, synthesize_corpus
from repro.fleet.store import ReportStore

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="SIGKILL/flock semantics are POSIX-only"
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_serve(store: Path, port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", str(store), "--host", "127.0.0.1",
         "--port", str(port), "--workers", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    # With --log-json a service-start event precedes the banner.
    for _ in range(5):
        line = proc.stdout.readline()
        if "listening on" in line:
            return proc
    raise AssertionError((line, proc.poll()))


async def _wait_for_accepts(store: Path, minimum: int,
                            timeout: float) -> None:
    """Poll the store directory until *minimum* reports are committed."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        blobs = list(store.glob("shard-*/*.bugnet"))
        if len(blobs) >= minimum:
            return
        await asyncio.sleep(0.02)
    raise AssertionError(
        f"service committed fewer than {minimum} reports in {timeout}s"
    )


def _corrupt_thread_blob() -> bytes:
    """A multithreaded report whose *non-faulting* thread's FLL is
    corrupt — the admission-integrity case: it must be rejected by the
    live service's whole-report validation (it used to be accepted and
    later crashed autopsy)."""
    import copy
    import dataclasses

    from repro.common.config import BugNetConfig
    from repro.tracing.serialize import dump_crash_report
    from repro.workloads.bugs import BUGS_BY_NAME, run_bug

    config = BugNetConfig(checkpoint_interval=2_000)
    run = run_bug(BUGS_BY_NAME["python-2.1.1-2"], bugnet=config, record=True)
    assert run.crashed
    crash = run.result.crash
    other = [t for t in crash.thread_ids if t != crash.faulting_tid][0]
    corrupted = copy.copy(crash)
    corrupted.checkpoints = dict(crash.checkpoints)
    checkpoints = list(crash.checkpoints[other])
    victim = checkpoints[0]
    payload = bytearray(victim.fll.payload)
    payload[len(payload) // 2] ^= 0xFF
    checkpoints[0] = dataclasses.replace(
        victim, fll=dataclasses.replace(victim.fll, payload=bytes(payload))
    )
    corrupted.checkpoints[other] = checkpoints
    return dump_crash_report(corrupted, config)


def test_restart_no_loss_no_duplication(tmp_path):
    # The corpus mixes single-thread and multithreaded traffic: the
    # python-2.1.1-2 entry exercises whole-report (every-thread)
    # validation across the kill -9 restart.
    _programs, items, failures = synthesize_corpus(
        36, ("tidy-34132-2", "tidy-34132-3", "python-2.1.1-2"), seed=11,
        corrupt=2, intervals=(2_000, 5_000), id_prefix="restart",
    )
    assert failures == 0
    items.append((
        "corrupt-thread-000", _corrupt_thread_blob(),
        "restart-11-corrupt-thread-000",
    ))
    store = tmp_path / "fleet"
    port = _free_port()
    proc = _spawn_serve(store, port)
    replacement = None

    async def scenario():
        nonlocal replacement
        uploads = asyncio.create_task(run_load_sim(
            "127.0.0.1", port, items, concurrency=4,
            max_attempts=200, backoff_base=0.02,
        ))
        # Let some commits land, then kill the service outright.
        await _wait_for_accepts(store, minimum=6, timeout=60)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        # Uploaders are now reconnect-looping; restart on the same
        # store and port (in a thread: _spawn_serve blocks on stdout).
        replacement = await asyncio.get_running_loop().run_in_executor(
            None, _spawn_serve, store, port,
        )
        return await uploads

    try:
        report = asyncio.run(scenario())
    finally:
        for child in (proc, replacement):
            if child is not None and child.poll() is None:
                child.send_signal(signal.SIGTERM)
                try:
                    child.wait(timeout=20)
                except subprocess.TimeoutExpired:
                    child.kill()
                    child.wait(timeout=20)

    valid = [i for i in items if not i[0].startswith("corrupt-")]
    # Every valid upload was eventually accepted; the kill cost nothing.
    assert len(report.accepted) == len(valid), report.to_dict()
    # The 2 byte-flipped blobs AND the corrupt-non-faulting-thread
    # report were rejected (the latter by whole-report validation).
    assert len(report.rejected) == 3
    assert any(o.label == "corrupt-thread-000" for o in report.rejected)
    assert not report.failed, [o.reason for o in report.failed]
    # The run really did ride through a restart.
    assert sum(o.reconnects for o in report.outcomes) > 0
    # Zero loss, zero duplication: each accepted upload_id appears in
    # the reopened store exactly once.
    reopened = ReportStore(store)
    stored_ids = [entry.upload_id for entry in reopened.entries()]
    assert len(stored_ids) == len(set(stored_ids)), "duplicated commits"
    accepted_ids = {
        uid for (label, _blob, uid) in valid
        if label in {o.label for o in report.accepted}
    }
    assert accepted_ids <= set(stored_ids), "accepted-then-lost reports"
    assert len(reopened) == len(valid)


def test_sigterm_drains_and_exits_zero(tmp_path):
    """SIGTERM is the *graceful* counterpart to the SIGKILL test above:
    the service must stop accepting, finish every in-flight upload,
    commit, and exit 0 — with a structured drain event on stdout."""
    import json

    _programs, items, failures = synthesize_corpus(
        10, ("tidy-34132-2", "tidy-34132-3"), seed=23, corrupt=0,
        intervals=(2_000, 5_000), id_prefix="drain",
    )
    assert failures == 0
    store = tmp_path / "fleet"
    port = _free_port()
    proc = _spawn_serve(store, port, "--log-json")

    async def scenario():
        uploads = asyncio.create_task(run_load_sim(
            "127.0.0.1", port, items, concurrency=4,
            max_attempts=8, backoff_base=0.02,
        ))
        # Let some commits land, then ask for a graceful shutdown
        # while uploads are still in flight.
        await _wait_for_accepts(store, minimum=3, timeout=60)
        os.kill(proc.pid, signal.SIGTERM)
        return await uploads

    try:
        report = asyncio.run(scenario())
    finally:
        if proc.poll() is None:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=20)

    # Graceful exit: status 0, never a crash or a kill.
    assert proc.returncode == 0, proc.returncode
    output = proc.stdout.read()
    assert "draining and shutting down" in output
    drain_events = [
        json.loads(line) for line in output.splitlines()
        if line.startswith("{") and '"event":"drain"' in line.replace(" ", "")
    ]
    assert drain_events, output
    assert drain_events[0]["seconds"] >= 0
    # The durability contract survives the drain: every upload the
    # client saw accepted is in the store exactly once.  (Uploads cut
    # off by the shutdown may legitimately fail client-side.)
    reopened = ReportStore(store)
    stored_ids = [entry.upload_id for entry in reopened.entries()]
    assert len(stored_ids) == len(set(stored_ids)), "duplicated commits"
    accepted_ids = {
        uid for (label, _blob, uid) in items
        if label in {o.label for o in report.accepted}
    }
    assert len(report.accepted) >= 3
    assert accepted_ids <= set(stored_ids), "accepted-then-lost reports"
