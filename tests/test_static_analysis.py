"""Unit tests for the static analysis layer: CFG, dataflow, slicing,
locksets."""

from repro.analysis.static import (
    CFG,
    PRECISE,
    SOUND,
    ReachingDefinitions,
    analysis_roots,
    backward_slice,
    constant_states,
    instruction_defs,
    instruction_uses,
    join_value,
    liveness,
    lockset_analysis,
    may_alias,
    race_candidates,
    region_of,
)
from repro.analysis.static.dataflow import ENTRY_DEF
from repro.arch.assembler import assemble
from repro.arch.isa import CODE_BASE, DATA_BASE, HEAP_BASE, pc_to_index

DIAMOND = """
main:
    li   t0, 1
    beq  t0, zero, left
    addi t1, zero, 2
    j    done
left:
    addi t1, zero, 3
done:
    li   v0, 1
    syscall
"""

LOOP = """
main:
    li   s0, 0
    li   s1, 10
loop:
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""

LOAD_BRANCH = """
.data
flag: .word 0
.text
main:
    la   t0, flag
    lw   t1, 0(t0)
    bnez t1, cold
    li   v0, 1
    syscall
cold:
    li   v0, 1
    syscall
"""


class TestCFG:
    def test_diamond_blocks_and_edges(self):
        cfg = CFG(assemble(DIAMOND))
        assert len(cfg.blocks) == 4
        entry, then, left, done = cfg.blocks
        assert set(entry.successors) == {then.bid, left.bid}
        assert then.successors == (done.bid,)
        assert left.successors == (done.bid,)
        assert done.successors == ()
        assert set(done.predecessors) == {then.bid, left.bid}

    def test_block_lookup(self):
        program = assemble(DIAMOND)
        cfg = CFG(program)
        left = cfg.block_at_pc(program.pc_of("left"))
        assert cfg.block_at(left.start) is left
        assert program.pc_of("left") == left.pc

    def test_dominators(self):
        cfg = CFG(assemble(DIAMOND))
        entry, then, left, done = cfg.blocks
        idom = cfg.dominators(roots=[0])
        assert idom[then.bid] == entry.bid
        assert idom[left.bid] == entry.bid
        # Neither arm dominates the join point; only the entry does.
        assert idom[done.bid] == entry.bid

    def test_postdominators(self):
        cfg = CFG(assemble(DIAMOND))
        entry, then, left, done = cfg.blocks
        ipdom = cfg.postdominators()
        assert ipdom[entry.bid] == done.bid
        assert ipdom[then.bid] == done.bid
        assert ipdom[left.bid] == done.bid

    def test_reachable(self):
        program = assemble(DIAMOND)
        cfg = CFG(program)
        assert cfg.reachable([0]) == frozenset(b.bid for b in cfg.blocks)
        done = cfg.block_at_pc(program.pc_of("done"))
        assert cfg.reachable([done.start]) == frozenset({done.bid})

    def test_loop_back_edge(self):
        program = assemble(LOOP)
        cfg = CFG(program)
        loop = cfg.block_at_pc(program.pc_of("loop"))
        assert loop.bid in loop.successors  # blt back to its own leader


class TestDefsUses:
    def test_alu(self):
        program = assemble("main: add t0, t1, t2")
        ins = program.instructions[0]
        assert instruction_defs(ins) == frozenset({8})
        assert instruction_uses(ins) == frozenset({9, 10})

    def test_store_uses_both(self):
        program = assemble("main: sw t1, 4(t0)")
        ins = program.instructions[0]
        assert instruction_defs(ins) == frozenset()
        assert instruction_uses(ins) == frozenset({8, 9})

    def test_jal_defines_ra(self):
        program = assemble("main: jal main")
        assert instruction_defs(program.instructions[0]) == frozenset({31})

    def test_syscall_reads_service_and_args(self):
        program = assemble("main: syscall")
        ins = program.instructions[0]
        assert 2 in instruction_defs(ins)
        assert instruction_uses(ins) >= frozenset({2, 4})

    def test_writes_to_r0_discarded(self):
        program = assemble("main: add zero, t1, t2")
        assert instruction_defs(program.instructions[0]) == frozenset()


class TestAnalysisRoots:
    def test_thread_entries_attribute(self):
        program = assemble(DIAMOND)
        assert analysis_roots(program) == frozenset({0})
        program.thread_entries = ("left",)
        roots = analysis_roots(program)
        assert pc_to_index(program.pc_of("left")) in roots

    def test_explicit_entries_override(self):
        program = assemble(DIAMOND)
        roots = analysis_roots(program, entries=["done"])
        assert pc_to_index(program.pc_of("done")) in roots


class TestRegions:
    def test_region_of(self):
        assert region_of(0x4) is None                  # null page
        assert region_of(CODE_BASE) == "code"
        assert region_of(DATA_BASE) == "data"
        assert region_of(HEAP_BASE) == "heap"
        assert region_of(0x7FFF0000 - 64) == "stack"
        assert region_of(0xA0000000) == "mmio"

    def test_join_value(self):
        assert join_value(5, 5) == 5
        assert join_value(DATA_BASE, DATA_BASE + 8) == "data"
        assert join_value(DATA_BASE, HEAP_BASE) is None
        assert join_value("heap", HEAP_BASE + 4) == "heap"
        assert join_value(None, 5) is None

    def test_may_alias(self):
        assert may_alias(None, 0) is True
        assert may_alias(DATA_BASE, DATA_BASE + 2) is True   # overlap
        assert may_alias(DATA_BASE, DATA_BASE + 4) is False  # distinct words
        assert may_alias("data", "heap") is False
        assert may_alias("data", DATA_BASE + 8) is True
        # Cross-thread queries: stacks never overlap between threads.
        assert may_alias("stack", "stack") is False


class TestConstantStates:
    def test_precise_folds_data_initialised_branch(self):
        # PRECISE reads `flag`'s initial 0 from the data image, folds the
        # branch, and proves `cold` unreachable; SOUND havocs loads and
        # must keep it live.
        program = assemble(LOAD_BRANCH)
        cfg = CFG(program)
        cold = cfg.block_at_pc(program.pc_of("cold")).bid
        precise = constant_states(program, mode=PRECISE, cfg=cfg)
        sound = constant_states(program, mode=SOUND, cfg=cfg)
        assert cold not in precise.reachable_blocks()
        assert cold in sound.reachable_blocks()

    def test_sbrk_result_region(self):
        source = """
main:
    li   a0, 64
    li   v0, 6
    syscall
    add  s0, v0, zero
    li   v0, 1
    syscall
"""
        program = assemble(source)
        move_index = 3
        precise = constant_states(program, mode=PRECISE)
        state = precise.state_before(move_index)
        assert state.reg(2) == HEAP_BASE  # brk is modelled exactly
        sound = constant_states(program, mode=SOUND)
        state = sound.state_before(move_index)
        assert state.reg(2) == "heap"     # region only: schedule-independent

    def test_walk_yields_independent_states(self):
        program = assemble(DIAMOND)
        consts = constant_states(program, mode=PRECISE)
        states = [state for _i, _ins, state in consts.walk(consts.cfg.blocks[0])]
        # Each yielded state is a snapshot, not the mutated live object.
        assert states[0].reg(8) != states[-1].reg(8) or len(states) == 1


class TestReachingDefinitions:
    def test_loop_head_sees_both_defs(self):
        program = assemble(LOOP)
        cfg = CFG(program)
        rd = ReachingDefinitions(cfg, roots=[0])
        loop_head = pc_to_index(program.pc_of("loop"))
        s0_defs = rd.at_instruction(loop_head)[16]
        assert s0_defs == frozenset({0, loop_head})  # init and increment

    def test_entry_def_for_unwritten_register(self):
        program = assemble("main: add t0, t1, t2")
        rd = ReachingDefinitions(CFG(program), roots=[0])
        assert rd.at_instruction(0)[9] == frozenset({ENTRY_DEF})


class TestLiveness:
    def test_loop_bound_live_through_loop(self):
        program = assemble(LOOP)
        cfg = CFG(program)
        live_in, _live_out = liveness(cfg)
        loop = cfg.block_at_pc(program.pc_of("loop"))
        assert 17 in live_in[loop.bid]  # s1, the loop bound
        assert 16 in live_in[loop.bid]  # s0, the counter

    def test_dead_value_not_live(self):
        program = assemble(DIAMOND)
        cfg = CFG(program)
        live_in, _ = liveness(cfg)
        # t1 is written on both arms but never read: dead everywhere.
        assert all(9 not in live for live in live_in.values())


class TestBackwardSlice:
    def test_slice_contains_dependencies(self):
        source = """
.data
cell: .word 0
.text
main:
    li   t0, 7
    li   t1, 0
    la   t2, cell
    sw   t0, 0(t2)
    lw   t3, 0(t2)
    add  t4, t3, t1
    li   v0, 1
    syscall
"""
        program = assemble(source)
        add_pc = program.entry_pc + 4 * 5
        result = backward_slice(program, add_pc)
        assert result.criterion_pc == add_pc
        pcs = set(result.pcs)
        assert program.entry_pc in pcs            # li t0 feeds the store
        assert program.entry_pc + 4 * 3 in pcs    # the store feeds the load
        assert result.size == len(result.pcs)

    def test_slice_excludes_unrelated_code(self):
        program = assemble(LOOP)
        # Slicing the final `li v0, 1` must not drag in the loop body:
        # v0 depends on nothing but its own immediate (plus control).
        exit_li = program.entry_pc + 4 * 4
        result = backward_slice(program, exit_li)
        loop_body = program.pc_of("loop")
        assert exit_li in result.pcs
        assert loop_body + 0 not in result.pcs or result.size < 5


class TestLockset:
    LOCKED = """
.data
shared: .word 0
.text
main:
    li   s0, 0
    li   s1, 30
loop:
    li   v0, 8
    li   a0, 1
    syscall
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    li   v0, 9
    li   a0, 1
    syscall
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""

    RACY = """
.data
shared: .word 0
.text
main:
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    li   v0, 1
    syscall
"""

    def _pcs(self, program, op):
        return [
            program.entry_pc + 4 * i
            for i, ins in enumerate(program.instructions)
            if ins.op == op
        ]

    def test_guarded_accesses_hold_the_lock(self):
        program = assemble(self.LOCKED)
        result = lockset_analysis(program)
        for pc in self._pcs(program, "lw") + self._pcs(program, "sw"):
            access = result.accesses[pc]
            assert access.must_locks == frozenset({1})
        actions = [event.action for event in result.events]
        assert actions.count("lock") == 1 and actions.count("unlock") == 1
        assert result.exit_held == []

    def test_common_lock_prunes_candidates(self):
        program = assemble(self.LOCKED)
        candidates = race_candidates(program)
        (load_pc,) = self._pcs(program, "lw")
        (store_pc,) = self._pcs(program, "sw")
        assert not candidates.may_race(load_pc, store_pc)
        assert not candidates.may_race(store_pc, store_pc)

    def test_unguarded_accesses_are_candidates(self):
        program = assemble(self.RACY)
        candidates = race_candidates(program)
        (load_pc,) = self._pcs(program, "lw")
        (store_pc,) = self._pcs(program, "sw")
        assert candidates.may_race(load_pc, store_pc)
        assert store_pc in candidates.relevant_pcs

    def test_unknown_pcs_stay_sound(self):
        program = assemble(self.RACY)
        candidates = race_candidates(program)
        assert candidates.may_race(0xDEAD0000, 0xDEAD0004)
