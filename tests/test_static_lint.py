"""Tests for ``bugnet lint``: checker units, the bug-suite expectation
table, and the clean SPEC-personality corpus."""

import json

import pytest

from repro.analysis.static import ALL_CHECKS, lint_program
from repro.arch.assembler import assemble
from repro.cli import main
from repro.workloads.bugs import BUG_SUITE
from repro.workloads.clean import CLEAN_BY_NAME, CLEAN_SUITE, run_clean


def checks_of(findings):
    return {finding.check for finding in findings}


class TestCheckers:
    def lint(self, source, **kwargs):
        return lint_program(assemble(source), **kwargs)

    def test_uninit_read(self):
        findings = self.lint("main:\n    add t0, t1, t2\n    li v0, 1\n    syscall")
        assert "uninit-read" in checks_of(findings)

    def test_one_armed_init_still_flagged(self):
        source = """
main:
    li   t0, 1
    beqz t0, skip
    li   t1, 5
skip:
    add  t2, t1, t0
    li   v0, 1
    syscall
"""
        assert "uninit-read" in checks_of(self.lint(source))

    def test_spawn_registers_are_defined(self):
        # a0 (the tid) and sp are kernel-initialised at spawn.
        source = """
main:
    add  t0, a0, sp
    li   v0, 1
    syscall
"""
        assert "uninit-read" not in checks_of(self.lint(source))

    def test_unreachable_block(self):
        source = """
main:
    j    end
orphan:
    li   t0, 9
end:
    li   v0, 1
    syscall
"""
        findings = self.lint(source)
        assert "unreachable-block" in checks_of(findings)

    def test_null_deref(self):
        source = """
main:
    li   t0, 0
    lw   t1, 0(t0)
    li   v0, 1
    syscall
"""
        assert "null-deref" in checks_of(self.lint(source))

    def test_misaligned_access(self):
        source = """
main:
    li   t0, 0x10000002
    lw   t1, 0(t0)
    li   v0, 1
    syscall
"""
        assert "misaligned-access" in checks_of(self.lint(source))

    def test_store_to_code(self):
        source = """
main:
    li   t0, 0x00400000
    sw   t0, 0(t0)
    li   v0, 1
    syscall
"""
        assert "store-to-code" in checks_of(self.lint(source))

    def test_wild_address(self):
        source = """
main:
    li   t0, 0x0BAD0000
    lw   t1, 0(t0)
    li   v0, 1
    syscall
"""
        assert "wild-address" in checks_of(self.lint(source))

    def test_lock_imbalance_relock(self):
        source = """
main:
    li   v0, 8
    li   a0, 1
    syscall
    li   v0, 8
    li   a0, 1
    syscall
    li   v0, 1
    syscall
"""
        assert "lock-imbalance" in checks_of(self.lint(source))

    def test_lock_held_at_exit(self):
        source = """
main:
    li   v0, 8
    li   a0, 1
    syscall
    li   v0, 1
    syscall
"""
        assert "lock-imbalance" in checks_of(self.lint(source))

    def test_balanced_locks_clean(self):
        source = """
main:
    li   v0, 8
    li   a0, 1
    syscall
    li   v0, 9
    li   a0, 1
    syscall
    li   v0, 1
    syscall
"""
        assert "lock-imbalance" not in checks_of(self.lint(source))

    def test_race_candidate_needs_multiple_entries(self):
        source = """
.data
shared: .word 0
.text
main:
    lw   t0, shared
    addi t0, t0, 1
    sw   t0, shared
    li   v0, 1
    syscall
worker:
    lw   t0, shared
    addi t0, t0, 2
    sw   t0, shared
    li   v0, 1
    syscall
"""
        program = assemble(source)
        # Without declared entries the worker is dead code, no races.
        solo = lint_program(assemble(source))
        assert "race-candidate" not in checks_of(solo)
        program.thread_entries = ("main", "worker")
        findings = lint_program(program)
        assert "race-candidate" in checks_of(findings)

    def test_findings_sorted_and_named(self):
        source = """
main:
    li   t0, 0
    lw   t1, 0(t0)
    add  t2, t3, t3
    li   v0, 1
    syscall
"""
        program = assemble(source, name="fixture")
        findings = lint_program(program)
        assert findings == sorted(
            findings, key=lambda f: (f.pc, f.check, f.message))
        assert all(f.program == "fixture" for f in findings)
        assert all(f.check in ALL_CHECKS for f in findings)


class TestBugSuiteTable:
    """Every statically detectable seeded bug is annotated with the
    check expected to flag it; the rest are input- or loop-dependent
    and must stay clean (zero false positives)."""

    @pytest.mark.parametrize(
        "bug", BUG_SUITE, ids=[bug.name for bug in BUG_SUITE])
    def test_expected_finding(self, bug):
        findings = lint_program(bug.program())
        if bug.expected_lint is None:
            assert findings == [], (
                f"{bug.name} is annotated statically-invisible but lint "
                f"found {[f.render() for f in findings]}"
            )
        else:
            assert bug.expected_lint in checks_of(findings)

    def test_expected_checks_are_real_checks(self):
        for bug in BUG_SUITE:
            if bug.expected_lint is not None:
                assert bug.expected_lint in ALL_CHECKS

    def test_table_covers_both_classes(self):
        annotated = [b for b in BUG_SUITE if b.expected_lint is not None]
        assert len(annotated) >= 8
        assert any(b.expected_lint == "race-candidate" for b in annotated)


class TestCleanCorpus:
    @pytest.mark.parametrize(
        "clean", CLEAN_SUITE, ids=[c.name for c in CLEAN_SUITE])
    def test_zero_findings(self, clean):
        assert lint_program(clean.program()) == []

    @pytest.mark.parametrize(
        "clean", CLEAN_SUITE, ids=[c.name for c in CLEAN_SUITE])
    def test_runs_to_clean_exit(self, clean):
        result = run_clean(clean)
        assert result.crash is None
        assert not result.timed_out
        assert result.exit_codes

    def test_covers_spec_personalities(self):
        from repro.workloads.spec import SPEC_WORKLOADS

        assert set(CLEAN_BY_NAME) == set(SPEC_WORKLOADS)


class TestLintCLI:
    def _write(self, tmp_path, source):
        path = tmp_path / "prog.s"
        path.write_text(source)
        return str(path)

    def test_clean_program_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "main:\n    li v0, 1\n    syscall\n")
        assert main(["lint", path]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "main:\n    li t0, 0\n    lw t1, 0(t0)\n    li v0, 1\n    syscall\n",
        )
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "null-deref" in out

    def test_json_shape(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "main:\n    li t0, 0\n    lw t1, 0(t0)\n    li v0, 1\n    syscall\n",
        )
        assert main(["lint", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]
        finding = payload["findings"][0]
        assert {"check", "pc", "line", "message", "program"} <= set(finding)

    def test_entry_flag_declares_threads(self, tmp_path, capsys):
        source = """
.data
shared: .word 0
.text
main:
    lw   t0, shared
    sw   t0, shared
    li   v0, 1
    syscall
worker:
    lw   t1, shared
    sw   t1, shared
    li   v0, 1
    syscall
"""
        path = self._write(tmp_path, source)
        assert main(["lint", path, "--entry", "main",
                     "--entry", "worker", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(f["check"] == "race-candidate" for f in payload["findings"])


class TestDisasmAnnotate:
    def test_leaders_marked(self, tmp_path, capsys):
        source = """
main:
    li   t0, 1
    beqz t0, done
    addi t0, t0, 1
done:
    li   v0, 1
    syscall
"""
        path = tmp_path / "prog.s"
        path.write_text(source)
        assert main(["disasm", str(path), "--annotate"]) == 0
        out = capsys.readouterr().out
        assert "; block B0" in out
        assert "exit" in out

    def test_default_output_unchanged(self, tmp_path, capsys):
        path = tmp_path / "prog.s"
        path.write_text("main:\n    nop\n")
        assert main(["disasm", str(path)]) == 0
        out = capsys.readouterr().out
        assert "block" not in out
