"""Multi-writer and crash-recovery tests for the sharded report store.

The contracts under test (DESIGN.md §8):

* concurrent writer *processes* never collide on sequence numbers,
  never tear each other's index records, and never lose entries;
* a writer SIGKILLed mid-commit leaves the store openable, with every
  acknowledged report present exactly once, no torn index records, and
  no orphaned blobs;
* v1 shard indexes (pre-upload-id) read transparently and upgrade in
  place on first append.
"""

import io
import json
import multiprocessing
import os
import signal
import struct
import sys
import time

import pytest

from repro.fleet.store import ReportStore, StoredEntry, _pack_entry

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="flock-based store locking is POSIX-only"
)


def digest_of(tag) -> str:
    import hashlib

    return hashlib.sha256(f"report-{tag}".encode()).hexdigest()


def _writer_proc(root, writer_id, count, ack_path):
    """Add *count* reports, appending each acknowledged seq to ack_path
    (flushed before the next add, like a service acking an upload)."""
    store = ReportStore(root)
    with open(ack_path, "a", buffering=1) as acks:
        for index in range(count):
            entry = store.add(
                digest_of((writer_id, index)),
                f"blob-{writer_id}-{index}".encode() * 8,
                fault_kind="memory",
                program_name=f"prog-{writer_id}",
                upload_id=f"w{writer_id}-{index}",
            )
            acks.write(f"{entry.seq}\n")


def _spin_writer(root, writer_id, ack_path):
    """Write reports forever (until killed)."""
    store = ReportStore(root)
    with open(ack_path, "a", buffering=1) as acks:
        index = 0
        while True:
            entry = store.add(
                digest_of((writer_id, index)),
                os.urandom(256),
                upload_id=f"w{writer_id}-{index}",
            )
            acks.write(f"{entry.seq}\n")
            index += 1


class TestConcurrentWriters:
    def test_parallel_processes_no_loss_no_collision(self, tmp_path):
        root = tmp_path / "store"
        ReportStore(root, num_shards=4)  # create
        ctx = multiprocessing.get_context("fork")
        acks = [tmp_path / f"acks-{i}.txt" for i in range(3)]
        procs = [
            ctx.Process(target=_writer_proc, args=(str(root), i, 20, str(acks[i])))
            for i in range(3)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        reopened = ReportStore(root)
        assert len(reopened) == 60
        seqs = [entry.seq for entry in reopened.entries()]
        assert len(set(seqs)) == 60, "sequence numbers must be unique"
        # Every acknowledged seq is present.
        acked = set()
        for path in acks:
            acked.update(int(line) for line in path.read_text().split())
        assert acked == set(seqs)
        # Every upload id resolves to its entry.
        for writer in range(3):
            for index in range(20):
                entry = reopened.entry_for_upload(f"w{writer}-{index}")
                assert entry is not None

    def test_sigkill_mid_commit_recovers(self, tmp_path):
        """SIGKILL a writer at a random point; the store must reopen
        with every acked report present exactly once, a parseable
        index, and no orphaned blobs."""
        root = tmp_path / "store"
        ReportStore(root, num_shards=4)
        ctx = multiprocessing.get_context("fork")
        ack_path = tmp_path / "acks.txt"
        proc = ctx.Process(target=_spin_writer,
                           args=(str(root), 0, str(ack_path)))
        proc.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if ack_path.exists() and len(ack_path.read_text().split()) >= 25:
                break
            time.sleep(0.01)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30)
        acked = {int(line) for line in ack_path.read_text().split()}
        assert len(acked) >= 25
        reopened = ReportStore(root)
        seqs = [entry.seq for entry in reopened.entries()]
        assert len(seqs) == len(set(seqs)), "no duplicated records"
        # No accepted-then-lost: every acked seq survived the kill.
        assert acked <= set(seqs)
        # At most the single in-flight (unacked) report beyond the acks.
        assert len(set(seqs) - acked) <= 1
        # No orphaned blobs or temp litter (swept at open).
        for shard in range(reopened.num_shards):
            shard_dir = root / f"shard-{shard:02d}"
            if not shard_dir.is_dir():
                continue
            on_disk = {blob.name for blob in shard_dir.glob("*.bugnet")}
            indexed = {entry.filename for entry in reopened.entries()
                       if entry.shard == shard}
            assert on_disk == indexed
            assert not list(shard_dir.glob("*.tmp"))
        # And the store keeps working: the next add gets a fresh seq.
        entry = reopened.add(digest_of("after"), b"x")
        assert entry.seq > max(seqs)

    def test_sigkill_loop_many_kill_points(self, tmp_path):
        """Repeat the kill at different commit phases (earlier kills hit
        blob/index/meta writes at different offsets)."""
        ctx = multiprocessing.get_context("fork")
        for round_index in range(3):
            root = tmp_path / f"store-{round_index}"
            ReportStore(root, num_shards=2)
            ack_path = tmp_path / f"acks-{round_index}.txt"
            proc = ctx.Process(target=_spin_writer,
                               args=(str(root), 0, str(ack_path)))
            proc.start()
            time.sleep(0.05 + 0.05 * round_index)
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=30)
            acked = set()
            if ack_path.exists():
                acked = {int(line) for line in ack_path.read_text().split()}
            reopened = ReportStore(root)
            seqs = {entry.seq for entry in reopened.entries()}
            assert acked <= seqs
            for entry in reopened.entries():
                assert reopened.path_of(entry).exists()


class TestEvictionVsConcurrentWriter:
    def test_eviction_rewrite_preserves_other_writers_records(
            self, tmp_path):
        """An eviction rewrite regenerates a whole shard index; it must
        absorb records another live writer appended since this writer's
        last sync, or their acknowledged commits silently vanish."""
        writer_a = ReportStore(tmp_path, num_shards=2, byte_budget=400)
        # Two digests landing in the same shard.
        first = digest_of("victim")
        shard = writer_a.shard_of(first)
        probe = 0
        while writer_a.shard_of(digest_of(("mate", probe))) != shard:
            probe += 1
        same_shard = digest_of(("mate", probe))
        victim = writer_a.add(first, b"v" * 100)
        assert victim.shard == shard
        # A second writer process (modelled as a second handle) commits
        # to the same shard behind writer A's back.
        writer_b = ReportStore(tmp_path)
        kept = writer_b.add(same_shard, b"k" * 50, upload_id="keep-me")
        assert kept.shard == shard
        # Writer A blows the budget; the oldest report (the victim in
        # that same shard) is evicted and the shard index rewritten.
        writer_a.add(digest_of("big"), b"b" * 350)
        reopened = ReportStore(tmp_path)
        seqs = {entry.seq for entry in reopened.entries()}
        assert victim.seq not in seqs
        assert kept.seq in seqs, "concurrent writer's commit was dropped"
        assert reopened.entry_for_upload("keep-me") is not None
        assert reopened.path_of(
            reopened.entry_for_upload("keep-me")).exists()


class TestRewriteThenRegrow:
    def test_stale_offset_survives_rewrite_and_regrowth(self, tmp_path):
        """Another writer's eviction rewrite followed by new appends
        can leave the index *larger* than a stale writer's synced
        offset; delta-parsing from that offset would read mid-record
        garbage.  The inode change from the replace-based rewrite must
        force a full reload instead."""
        writer_a = ReportStore(tmp_path, num_shards=1)
        writer_a.add(digest_of("e0"), b"0" * 100, upload_id="id-e0")
        writer_a.add(digest_of("e1"), b"1" * 100, upload_id="id-e1")
        # Writer B evicts e0 (rewrite: new inode, shorter index), then
        # commits a record whose length differs from e0's, regrowing
        # the file past A's stale synced offset at a misaligned byte.
        writer_b = ReportStore(tmp_path, byte_budget=250)
        kept = writer_b.add(
            digest_of("e2"), b"2" * 100,
            upload_id="a-deliberately-much-longer-upload-identifier",
        )
        # Writer A appends with its stale view of the shard.
        writer_a.add(digest_of("e3"), b"3" * 100, upload_id="id-e3")
        reopened = ReportStore(tmp_path)
        ids = {entry.upload_id for entry in reopened.entries()}
        assert kept.upload_id in ids, "regrown record was corrupted"
        assert ids == {kept.upload_id, "id-e1", "id-e3"}
        for entry in reopened.entries():
            assert reopened.path_of(entry).exists()


class TestTornTailRepair:
    def test_append_after_torn_tail(self, tmp_path):
        """A torn trailing record must not corrupt records appended by
        the next writer (the tail is truncated before the append)."""
        store = ReportStore(tmp_path, num_shards=1)
        for index in range(3):
            store.add(digest_of(index), b"x" * 50)
        index_path = tmp_path / "shard-00" / "index.bin"
        data = index_path.read_bytes()
        index_path.write_bytes(data[:-9])  # tear the last record
        # A fresh writer (fresh process in production) appends:
        writer = ReportStore(tmp_path)
        assert len(writer) == 2
        entry = writer.add(digest_of("new"), b"y" * 50)
        reopened = ReportStore(tmp_path)
        assert [e.seq for e in reopened.entries()] == [0, 1, entry.seq]
        # The torn record's seq is never reused.
        assert entry.seq == 3


class TestLegacyIndexCompat:
    def _write_legacy_store(self, root, entries_per_shard, version):
        """Materialize a v1/v2-format store (records packed without the
        fields the later versions appended: v2 added ``upload_id``, v3
        added ``race_pcs``)."""
        store = ReportStore(root, num_shards=2)
        added = []
        for index in range(entries_per_shard):
            added.append(store.add(digest_of(index), b"z" * 40,
                                   fault_kind="memory",
                                   program_name="prog"))
        for shard in range(2):
            shard_entries = [e for e in added if e.shard == shard]
            out = io.BytesIO()
            out.write(b"BGSI")
            out.write(struct.pack("<I", version))
            for entry in shard_entries:
                packed = _pack_entry(entry)
                # v4 pack ends with the route_key string (u32 len,
                # empty here) after the race_pcs field (u32 count,
                # empty here) after the upload_id string (u32 len +
                # bytes); strip per target version.
                strip = 4  # route_key length
                strip += 4  # race_pcs count
                if version < 2:
                    strip += 4 + len(entry.upload_id.encode())
                out.write(packed[:-strip])
            (root / f"shard-{shard:02d}" / "index.bin").write_bytes(
                out.getvalue()
            )
        return added

    def test_v1_index_reads_and_upgrades_on_append(self, tmp_path):
        added = self._write_legacy_store(tmp_path, 6, version=1)
        reopened = ReportStore(tmp_path)
        assert len(reopened) == 6
        assert [e.digest for e in reopened.entries()] == \
            [e.digest for e in added]
        assert all(e.upload_id == "" for e in reopened.entries())
        assert all(e.race_pcs == () for e in reopened.entries())
        # First append upgrades the touched shard to v3 in place.
        entry = reopened.add(digest_of("new"), b"q" * 40,
                             upload_id="upgraded-1")
        again = ReportStore(tmp_path)
        assert len(again) == 7
        assert again.entry_for_upload("upgraded-1").seq == entry.seq

    def test_v2_index_reads_and_upgrades_on_append(self, tmp_path):
        added = self._write_legacy_store(tmp_path, 6, version=2)
        reopened = ReportStore(tmp_path)
        assert len(reopened) == 6
        assert all(e.race_pcs == () for e in reopened.entries())
        # First append upgrades the shard to v3; the new record's race
        # evidence round-trips and old records stay race-free.
        entry = reopened.add(digest_of("racy"), b"q" * 40,
                             upload_id="upgraded-2",
                             race_pcs=(0x400120, 0x400084))
        again = ReportStore(tmp_path)
        assert len(again) == 7
        stored = next(e for e in again.entries() if e.seq == entry.seq)
        assert stored.race_pcs == (0x400120, 0x400084)
        assert stored.racy
        assert again.entry_for_upload("upgraded-2").seq == entry.seq
        assert sum(1 for e in again.entries() if e.racy) == 1


class TestUploadIdIndex:
    def test_round_trips_and_survives_reopen(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        store.add(digest_of(1), b"a", upload_id="client-1")
        store.add(digest_of(2), b"b")
        assert store.entry_for_upload("client-1").digest == digest_of(1)
        assert store.entry_for_upload("") is None
        assert store.entry_for_upload("nope") is None
        reopened = ReportStore(tmp_path)
        assert reopened.entry_for_upload("client-1").digest == digest_of(1)

    def test_eviction_drops_upload_id(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2, byte_budget=150)
        store.add(digest_of(1), b"a" * 100, upload_id="old")
        store.add(digest_of(2), b"b" * 100, upload_id="new")
        assert store.entry_for_upload("old") is None
        assert store.entry_for_upload("new") is not None


class TestShardOccupancy:
    def test_counts_match_entries(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        for index in range(16):
            store.add(digest_of(index), b"x" * (10 + index))
        occupancy = store.shard_occupancy()
        assert len(occupancy) == 4
        assert sum(slot["reports"] for slot in occupancy) == 16
        assert sum(slot["bytes"] for slot in occupancy) == store.total_bytes
        for slot in occupancy:
            expected = [e for e in store.entries() if e.shard == slot["shard"]]
            assert slot["reports"] == len(expected)


class TestBatchedCommits:
    def test_add_many_consecutive_seqs_one_meta_pass(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=4)
        entries = store.add_many([
            {"digest": digest_of(i), "blob": bytes([i]) * 20,
             "upload_id": f"batch-{i}"}
            for i in range(10)
        ])
        assert [entry.seq for entry in entries] == list(range(10))
        meta = json.loads((tmp_path / "store.json").read_text())
        assert meta["next_seq"] == 10
        reopened = ReportStore(tmp_path)
        assert len(reopened) == 10

    def test_add_many_protects_whole_batch_from_eviction(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2, byte_budget=250)
        store.add(digest_of("old"), b"o" * 100)
        entries = store.add_many([
            {"digest": digest_of(i), "blob": b"n" * 100} for i in range(3)
        ])
        kept = {entry.seq for entry in store.entries()}
        # The old report is evicted; the whole new batch survives even
        # though it exceeds the budget on its own.
        assert kept == {entry.seq for entry in entries}

    def test_add_many_empty(self, tmp_path):
        store = ReportStore(tmp_path, num_shards=2)
        assert store.add_many([]) == []
        assert len(store) == 0


class TestEntryEquality(object):
    def test_stored_entry_has_upload_id_default(self):
        entry = StoredEntry(
            digest="ab" * 32, seq=0, observed_at=0, byte_size=1,
            replay_window=0, fault_kind="", program_name="",
            shard=0, filename="f",
        )
        assert entry.upload_id == ""
