"""Unit/integration tests for the OS substrate: devices, DMA, faults."""

import pytest

from repro.arch import assemble
from repro.arch.memory import Memory
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay import Replayer, assert_traces_equal
from repro.system.devices import ConsoleDevice, InputDevice
from repro.system.dma import DMAEngine


class TestDevices:
    def test_console_collects(self):
        console = ConsoleDevice()
        console.write_int(42)
        console.write_char(ord("!"))
        assert console.values == [42, 33]
        assert console.text == "42!"

    def test_input_push_string_wide(self):
        device = InputDevice()
        device.push_string("ab")
        assert device.read(10) == [ord("a"), ord("b"), 0]

    def test_input_partial_read(self):
        device = InputDevice([1, 2, 3])
        assert device.read(2) == [1, 2]
        assert device.available == 1

    def test_input_read_empty(self):
        assert InputDevice().read(4) == []


class TestDMAEngine:
    def test_synchronous_transfer(self):
        memory = Memory()
        dma = DMAEngine(memory=memory)
        dma.start(0x1000, [1, 2, 3], now=0, delay=0)
        assert memory.peek(0x1000) == 1
        assert memory.peek(0x1008) == 3
        assert dma.transfers_completed == 1

    def test_delayed_transfer(self):
        memory = Memory()
        dma = DMAEngine(memory=memory)
        done = []
        dma.start(0x1000, [7], now=0, delay=10, on_complete=lambda: done.append(1))
        assert memory.peek(0x1000) == 0
        dma.advance(5)
        assert not done
        dma.advance(10)
        assert memory.peek(0x1000) == 7
        assert done == [1]

    def test_next_completion(self):
        dma = DMAEngine(memory=Memory())
        dma.start(0, [1], now=0, delay=30)
        dma.start(0x100, [1], now=0, delay=10)
        assert dma.next_completion == 10

    def test_flush_completes_everything(self):
        memory = Memory()
        dma = DMAEngine(memory=memory)
        dma.start(0x1000, [9], now=0, delay=1000)
        dma.flush()
        assert memory.peek(0x1000) == 9
        assert dma.pending_count == 0


IO_SOURCE = """
.data
buf: .space 64
.text
main:
    la   a0, buf
    li   a1, 8
    li   v0, 4
    syscall
    move s0, v0
    li   s1, 0
    li   s2, 0
    la   s3, buf
rd:
    sll  t0, s2, 2
    add  t0, s3, t0
    lw   t1, 0(t0)
    add  s1, s1, t1
    addi s2, s2, 1
    blt  s2, s0, rd
    move a0, s1
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""


class TestIOAndDMAReplay:
    @pytest.mark.parametrize("delay", [0, 25, 200])
    def test_dma_delivered_input_replays(self, delay):
        program = assemble(IO_SOURCE)
        machine = Machine(
            program, MachineConfig(), BugNetConfig(checkpoint_interval=40),
            collect_traces=True,
            input_words=[5, 10, 15, 20, 25, 30, 35, 40],
            dma_delay=delay,
        )
        machine.spawn()
        result = machine.run()
        assert result.console_values == [180]
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        events = [e for r in Replayer(program, machine.bugnet).replay(flls)
                  for e in r.events]
        assert_traces_equal(machine.collectors[0], events)

    def test_read_returns_word_count(self):
        program = assemble(IO_SOURCE)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=100),
                          input_words=[1, 2, 3])
        machine.spawn()
        result = machine.run()
        assert result.console_values == [6]  # read 3 of max 8 words

    def test_dma_invalidates_cached_blocks(self):
        # Load the buffer BEFORE the read so it is cached with set bits;
        # the DMA write must invalidate it, forcing the post-read loads
        # to be re-logged with the new values.
        source = """
.data
buf: .space 64
.text
main:
    lw   t0, buf
    la   a0, buf
    li   a1, 2
    li   v0, 4
    syscall
    lw   t1, buf
    move a0, t1
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1_000_000),
                          collect_traces=True, input_words=[777, 888])
        machine.spawn()
        result = machine.run()
        assert result.console_values == [777]
        flls = [cp.fll for cp in result.log_store.checkpoints(0)]
        events = [e for r in Replayer(program, machine.bugnet).replay(flls)
                  for e in r.events]
        assert_traces_equal(machine.collectors[0], events)

    def test_sbrk_grows_heap(self):
        source = """
main:
    li   a0, 8192
    li   v0, 6
    syscall
    move s0, v0
    li   a0, 131072
    li   v0, 6
    syscall
    move s1, v0
    li   t0, 123
    sw   t0, 0(s1)       # beyond the initial mapping: sbrk mapped it
    lw   a0, 0(s1)
    li   v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn()
        result = machine.run()
        assert result.exit_codes[0] == 123

    def test_write_out_syscall(self):
        source = """
.data
msg: .word 11, 22, 33
.text
main:
    la  a0, msg
    li  a1, 3
    li  v0, 7
    syscall
    li  v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn()
        result = machine.run()
        assert result.console_values == [11, 22, 33]


class TestLockErrors:
    def test_double_lock_faults(self):
        source = """
main:
    li v0, 8
    li a0, 5
    syscall
    li v0, 8
    li a0, 5
    syscall
    li v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn()
        result = machine.run()
        assert result.crashed
        assert "relocked" in result.crash.fault_message

    def test_unlock_unheld_faults(self):
        source = """
main:
    li v0, 9
    li a0, 5
    syscall
    li v0, 1
    syscall
"""
        program = assemble(source)
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1000))
        machine.spawn()
        result = machine.run()
        assert result.crashed
