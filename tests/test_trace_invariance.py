"""Invariance tests for the trace-driven engine.

The engine must measure properties of the *workload*, not artifacts of
how the event stream is chunked or of satellite instrumentation.
"""

from repro.common.config import BugNetConfig
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import TraceEngine


def run_engine(chunk_size, satellite_sizes=(), instructions=60_000):
    personality = SPEC_WORKLOADS["gzip"]
    engine = TraceEngine(
        "gzip", BugNetConfig(checkpoint_interval=10_000),
        satellite_sizes=satellite_sizes,
    )
    chunks = personality.events(instructions, seed=9, chunk=chunk_size)
    return engine.run(chunks, instructions)


class TestChunkInvariance:
    def test_chunk_size_statistically_invariant(self):
        """Chunking interleaves RNG draws differently (the streams are
        not bitwise identical), but every measured statistic must agree
        closely — in particular the frequent-value pool is fixed per
        stream, so dictionary behaviour cannot depend on chunking."""
        small = run_engine(chunk_size=512)
        large = run_engine(chunk_size=1 << 16)
        assert small.intervals == large.intervals
        assert abs(small.loads - large.loads) / large.loads < 0.02
        assert abs(small.logged_loads - large.logged_loads) \
            / large.logged_loads < 0.02
        assert abs(small.fll_bytes - large.fll_bytes) / large.fll_bytes < 0.05

    def test_same_chunk_size_bitwise_deterministic(self):
        a = run_engine(chunk_size=4096)
        b = run_engine(chunk_size=4096)
        assert a.fll_bytes == b.fll_bytes
        assert a.logged_loads == b.logged_loads
        assert a.loads == b.loads

    def test_satellites_do_not_perturb_main_measurements(self):
        bare = run_engine(chunk_size=4096)
        instrumented = run_engine(chunk_size=4096,
                                  satellite_sizes=(8, 64, 1024))
        assert bare.fll_bytes == instrumented.fll_bytes
        assert bare.logged_loads == instrumented.logged_loads
        assert bare.compression_ratio == instrumented.compression_ratio

    def test_shared_bits_accounting_consistent(self):
        stats = run_engine(chunk_size=4096, satellite_sizes=(64,))
        config = BugNetConfig(checkpoint_interval=10_000)
        # The 64-entry satellite mirrors the main dictionary, so its
        # reconstructed compression ratio matches the real one closely
        # (identical value-bit decisions; same shared-field bits).
        assert abs(stats.compression_ratio_for(64, config)
                   - stats.compression_ratio) < 0.01


class TestWindowScaling:
    def test_half_window_logs_less(self):
        full = run_engine(chunk_size=8192, instructions=80_000)
        half = run_engine(chunk_size=8192, instructions=40_000)
        assert half.fll_bytes < full.fll_bytes
        assert half.instructions < full.instructions

    def test_stats_internally_consistent(self):
        stats = run_engine(chunk_size=8192)
        assert stats.logged_loads <= stats.loads
        assert stats.fll_payload_bits <= stats.fll_raw_payload_bits
        assert stats.fll_bytes >= stats.fll_payload_bits // 8
        assert 0.0 <= stats.first_load_rate <= 1.0
