"""Unit tests for the trace-equivalence validator."""

import pytest

from repro.common.errors import ReplayDivergence
from repro.replay.replayer import ReplayEvent
from repro.replay.validation import TraceCollector, assert_traces_equal


def event(ic=1, pc=0x400000, op="nop", load=None, store=None):
    return ReplayEvent(ic=ic, pc=pc, op=op, load=load, store=store)


class TestFullTraces:
    def test_equal_traces_pass(self):
        collector = TraceCollector()
        collector.commit(0x400000, "lw", (0x100, 5), None)
        events = [event(pc=0x400000, op="lw", load=(0x100, 5))]
        assert_traces_equal(collector, events)

    def test_count_mismatch(self):
        collector = TraceCollector()
        collector.commit(0x400000, "nop", None, None)
        with pytest.raises(ReplayDivergence, match="counts differ"):
            assert_traces_equal(collector, [])

    def test_pc_mismatch(self):
        collector = TraceCollector()
        collector.commit(0x400000, "nop", None, None)
        with pytest.raises(ReplayDivergence, match="pc diverges"):
            assert_traces_equal(collector, [event(pc=0x400004)])

    def test_load_mismatch(self):
        collector = TraceCollector()
        collector.commit(0x400000, "lw", (0x100, 5), None)
        with pytest.raises(ReplayDivergence, match="load diverges"):
            assert_traces_equal(
                collector, [event(op="lw", load=(0x100, 6))]
            )

    def test_store_mismatch(self):
        collector = TraceCollector()
        collector.commit(0x400000, "sw", None, (0x100, 5))
        with pytest.raises(ReplayDivergence, match="store diverges"):
            assert_traces_equal(
                collector, [event(op="sw", store=(0x104, 5))]
            )

    def test_context_in_message(self):
        collector = TraceCollector()
        collector.commit(0, "nop", None, None)
        with pytest.raises(ReplayDivergence, match="myctx"):
            assert_traces_equal(collector, [], context="myctx")


class TestDigestTraces:
    def test_matching_digest_passes(self):
        collector = TraceCollector(digest_only=True)
        collector.commit(0x400000, "lw", (0x100, 5), None)
        collector.commit(0x400004, "sw", None, (0x104, 9))
        events = [
            event(pc=0x400000, op="lw", load=(0x100, 5)),
            event(pc=0x400004, op="sw", store=(0x104, 9)),
        ]
        assert_traces_equal(collector, events)

    def test_digest_detects_mismatch(self):
        collector = TraceCollector(digest_only=True)
        collector.commit(0x400000, "lw", (0x100, 5), None)
        with pytest.raises(ReplayDivergence, match="digests differ"):
            assert_traces_equal(
                collector, [event(pc=0x400000, op="lw", load=(0x100, 6))]
            )

    def test_digest_mode_stores_no_records(self):
        collector = TraceCollector(digest_only=True)
        for _ in range(100):
            collector.commit(0, "nop", None, None)
        assert collector.records == []
        assert collector.count == 100

    def test_order_sensitivity(self):
        a = TraceCollector(digest_only=True)
        a.commit(1, "nop", None, None)
        a.commit(2, "nop", None, None)
        b = TraceCollector(digest_only=True)
        b.commit(2, "nop", None, None)
        b.commit(1, "nop", None, None)
        assert a.digest != b.digest
