"""Unit tests for the synthetic workload models and the trace engine."""

import numpy as np
import pytest

from repro.common.config import BugNetConfig
from repro.workloads.access import AccessModel, Region
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import TraceEngine, record_personality
from repro.workloads.values import ValueModel


class TestValueModel:
    def model(self, **kwargs):
        defaults = dict(frequent_weight=0.5, small_int_weight=0.2,
                        pointer_weight=0.1)
        defaults.update(kwargs)
        return ValueModel(**defaults)

    def test_values_are_32_bit(self):
        rng = np.random.default_rng(1)
        values = self.model().sample(rng, 1000)
        assert values.dtype == np.uint32

    def test_seeded_determinism(self):
        values_a = self.model().sample(np.random.default_rng(7), 500)
        values_b = self.model().sample(np.random.default_rng(7), 500)
        assert (values_a == values_b).all()

    def test_frequent_pool_dominates(self):
        rng = np.random.default_rng(2)
        model = self.model(frequent_weight=0.9, small_int_weight=0.0,
                           pointer_weight=0.0)
        values = model.sample(rng, 5000)
        top_values, counts = np.unique(values, return_counts=True)
        # With 90% pool mass, the head values repeat heavily.
        assert counts.max() > 100

    def test_weights_must_sum_below_one(self):
        with pytest.raises(ValueError):
            ValueModel(frequent_weight=0.8, small_int_weight=0.3,
                       pointer_weight=0.1)

    def test_pointer_values_in_span(self):
        rng = np.random.default_rng(3)
        model = ValueModel(frequent_weight=0.0, small_int_weight=0.0,
                           pointer_weight=1.0, pointer_base=0x20000000,
                           pointer_span=0x1000)
        values = model.sample(rng, 200)
        assert ((values >= 0x20000000) & (values < 0x20001000)).all()


class TestAccessModel:
    def test_zipf_region_skews_to_base(self):
        rng = np.random.default_rng(4)
        model = AccessModel([Region("zipf", 0x1000, 10_000, 1.0)])
        addrs = model.sample(rng, 5000)
        # Log-uniform ranks: at least a third of references hit the first
        # few hundred words.
        hot = (addrs < 0x1000 + 4 * 100).sum()
        assert hot > 1000

    def test_stream_region_walks_sequentially(self):
        rng = np.random.default_rng(5)
        model = AccessModel([Region("stream", 0, 1 << 20, 1.0, stride=1)])
        addrs = model.sample(rng, 10)
        assert list(addrs) == [4 * (i + 1) for i in range(10)]

    def test_stream_wraps(self):
        rng = np.random.default_rng(5)
        model = AccessModel([Region("stream", 0, 4, 1.0, stride=1)])
        addrs = model.sample(rng, 8)
        assert list(addrs[:4]) == [4, 8, 12, 0]

    def test_stream_position_persists_across_batches(self):
        rng = np.random.default_rng(5)
        model = AccessModel([Region("stream", 0, 1 << 20, 1.0, stride=1)])
        first = model.sample(rng, 5)
        second = model.sample(rng, 5)
        assert second[0] == first[-1] + 4

    def test_chase_region_bounded(self):
        rng = np.random.default_rng(6)
        model = AccessModel([Region("chase", 0x4000, 100, 1.0)])
        addrs = model.sample(rng, 1000)
        assert ((addrs >= 0x4000) & (addrs < 0x4000 + 400)).all()

    def test_addresses_word_aligned(self):
        rng = np.random.default_rng(7)
        model = AccessModel([
            Region("zipf", 0x1000, 50, 0.3),
            Region("stream", 0x2000, 50, 0.3),
            Region("chase", 0x3000, 50, 0.4),
        ])
        assert (model.sample(rng, 500) % 4 == 0).all()

    def test_bad_region_kind_rejected(self):
        with pytest.raises(ValueError):
            Region("random", 0, 10, 1.0)

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            AccessModel([])


class TestPersonalities:
    def test_seven_benchmarks(self):
        assert sorted(SPEC_WORKLOADS) == [
            "art", "bzip2", "crafty", "gzip", "mcf", "parser", "vpr",
        ]

    def test_event_chunks_cover_budget(self):
        personality = SPEC_WORKLOADS["gzip"]
        total = 0
        for gaps, *_ in personality.events(10_000):
            total += int(gaps.sum())
        assert total >= 10_000

    def test_seeded_streams_identical(self):
        personality = SPEC_WORKLOADS["mcf"]
        chunk_a = next(iter(personality.events(1000, seed=3)))
        chunk_b = next(iter(personality.events(1000, seed=3)))
        for array_a, array_b in zip(chunk_a, chunk_b):
            assert (array_a == array_b).all()

    def test_different_seeds_differ(self):
        personality = SPEC_WORKLOADS["mcf"]
        addrs_a = next(iter(personality.events(1000, seed=1)))[2]
        addrs_b = next(iter(personality.events(1000, seed=2)))[2]
        assert not (addrs_a == addrs_b).all()


class TestTraceEngine:
    def test_instruction_budget_respected(self):
        stats = record_personality(SPEC_WORKLOADS["art"], 20_000, 5_000)
        assert abs(stats.instructions - 20_000) <= 64

    def test_interval_accounting(self):
        stats = record_personality(SPEC_WORKLOADS["art"], 20_000, 5_000)
        assert stats.intervals in (4, 5)

    def test_loads_plus_stores_counted(self):
        stats = record_personality(SPEC_WORKLOADS["art"], 20_000, 5_000)
        assert stats.loads > 0 and stats.stores > 0
        ratio = (stats.loads + stats.stores) / stats.instructions
        personality = SPEC_WORKLOADS["art"]
        assert abs(ratio - personality.mem_ratio) < 0.05

    def test_first_load_rate_decreases_with_interval(self):
        # The paper's Figure 3 mechanism, as a hard shape assertion.
        personality = SPEC_WORKLOADS["gzip"]
        short = record_personality(personality, 100_000, 1_000)
        long = record_personality(personality, 100_000, 50_000)
        assert short.first_load_rate > long.first_load_rate

    def test_fll_bytes_positive_and_bounded(self):
        stats = record_personality(SPEC_WORKLOADS["vpr"], 50_000, 10_000)
        assert 0 < stats.fll_bytes
        # Never worse than ~5.5 bytes per load (full record + headers).
        assert stats.fll_bytes < stats.loads * 5.5 + 4096

    def test_satellite_hit_rates_monotone_in_size(self):
        stats = record_personality(
            SPEC_WORKLOADS["parser"], 100_000, 20_000,
            satellite_sizes=(8, 64, 1024),
        )
        hit8 = stats.dict_stats[8].hit_rate
        hit64 = stats.dict_stats[64].hit_rate
        hit1024 = stats.dict_stats[1024].hit_rate
        assert hit8 <= hit64 <= hit1024

    def test_satellite_64_matches_main_dictionary(self):
        config = BugNetConfig(checkpoint_interval=20_000)
        engine = TraceEngine("x", config, satellite_sizes=(64,))
        personality = SPEC_WORKLOADS["art"]
        stats = engine.run(personality.events(50_000), 50_000)
        main_rate = engine.recorder.dictionary.hit_rate
        assert abs(stats.dict_stats[64].hit_rate - main_rate) < 1e-9

    def test_compression_ratio_above_one(self):
        stats = record_personality(SPEC_WORKLOADS["art"], 50_000, 10_000)
        assert stats.compression_ratio > 1.0

    def test_compression_ratio_for_satellite_sizes(self):
        config = BugNetConfig(checkpoint_interval=10_000)
        stats = record_personality(
            SPEC_WORKLOADS["art"], 50_000, 10_000, satellite_sizes=(8, 1024),
        )
        small = stats.compression_ratio_for(8, config)
        large = stats.compression_ratio_for(1024, config)
        assert small <= large

    def test_engine_deterministic(self):
        a = record_personality(SPEC_WORKLOADS["bzip2"], 30_000, 10_000, seed=5)
        b = record_personality(SPEC_WORKLOADS["bzip2"], 30_000, 10_000, seed=5)
        assert a.fll_bytes == b.fll_bytes
        assert a.logged_loads == b.logged_loads
